package main

import (
	"strings"
	"testing"
)

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
}

func TestProtocolTables(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-table", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "sync&flush") {
		t.Errorf("Table 1 output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-table", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Errorf("Table 2 output unexpected:\n%s", out.String())
	}
}

func TestFigures(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("Figure 1 output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-figure", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Errorf("Figure 2 output unexpected:\n%s", out.String())
	}
}

func TestTimingReportsEventCounts(t *testing.T) {
	// -timing diagnostics go to stderr only; the table on stdout must be
	// byte-identical with and without it.
	var plain, plainErr strings.Builder
	if code := run([]string{"-small", "-table", "3"}, &plain, &plainErr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, plainErr.String())
	}
	var timed, timedErr strings.Builder
	if code := run([]string{"-small", "-table", "3", "-timing"}, &timed, &timedErr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, timedErr.String())
	}
	if plain.String() != timed.String() {
		t.Error("-timing changed the table output")
	}
	se := timedErr.String()
	if !strings.Contains(se, "wall time") || !strings.Contains(se, "trace events") {
		t.Errorf("-timing should report wall time and event counts on stderr, got: %s", se)
	}
	for _, kind := range []string{"action", "state-change", "dispatch"} {
		if !strings.Contains(se, kind) {
			t.Errorf("-timing breakdown missing %q:\n%s", kind, se)
		}
	}
}

func TestExperimentList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	for _, name := range []string{"table3", "pressuresweep", "falsesharing"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("experiment list missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "nonsense"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "nonsense") {
		t.Errorf("stderr should name the unknown experiment, got: %s", errb.String())
	}
}

func TestPressureSweepExperiment(t *testing.T) {
	var out, errb strings.Builder
	args := []string{"-small", "-nproc", "3", "-exp", "pressuresweep",
		"-app", "FFT", "-frames", "4,2"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Memory pressure") ||
		!strings.Contains(out.String(), "unbounded") {
		t.Errorf("pressure table unexpected:\n%s", out.String())
	}

	// The same sweep as CSV.
	var csv strings.Builder
	if code := run(append(args, "-csv"), &csv, &errb); code != 0 {
		t.Fatalf("csv exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(csv.String(), "app,local_frames,") {
		t.Errorf("csv output unexpected:\n%s", csv.String())
	}
}

func TestPressureSweepChaosDeterminism(t *testing.T) {
	args := []string{"-small", "-nproc", "3", "-exp", "pressuresweep",
		"-app", "IMatMult", "-frames", "4",
		"-chaos-seed", "42", "-chaos-fail", "0.2", "-chaos-delay", "0.2"}
	var a, b, errb strings.Builder
	if code := run(append(args, "-parallel", "1"), &a, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if code := run(append(args, "-parallel", "4"), &b, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if a.String() != b.String() {
		t.Errorf("chaos run differs across -parallel:\n-parallel 1:\n%s\n-parallel 4:\n%s",
			a.String(), b.String())
	}
	if !strings.Contains(a.String(), "Memory pressure") {
		t.Errorf("pressure table missing:\n%s", a.String())
	}
}

func TestBadFramesFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "pressuresweep", "-frames", "4,zero"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
}

func TestBadChaosConfigFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "pressuresweep", "-chaos-fail", "1.5"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
}
