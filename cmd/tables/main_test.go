package main

import (
	"strings"
	"testing"
)

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
}

func TestProtocolTables(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-table", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "sync&flush") {
		t.Errorf("Table 1 output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-table", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Errorf("Table 2 output unexpected:\n%s", out.String())
	}
}

func TestFigures(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("Figure 1 output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-figure", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Errorf("Figure 2 output unexpected:\n%s", out.String())
	}
}

func TestTimingReportsEventCounts(t *testing.T) {
	// -timing diagnostics go to stderr only; the table on stdout must be
	// byte-identical with and without it.
	var plain, plainErr strings.Builder
	if code := run([]string{"-small", "-table", "3"}, &plain, &plainErr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, plainErr.String())
	}
	var timed, timedErr strings.Builder
	if code := run([]string{"-small", "-table", "3", "-timing"}, &timed, &timedErr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, timedErr.String())
	}
	if plain.String() != timed.String() {
		t.Error("-timing changed the table output")
	}
	se := timedErr.String()
	if !strings.Contains(se, "wall time") || !strings.Contains(se, "trace events") {
		t.Errorf("-timing should report wall time and event counts on stderr, got: %s", se)
	}
	for _, kind := range []string{"action", "state-change", "dispatch"} {
		if !strings.Contains(se, kind) {
			t.Errorf("-timing breakdown missing %q:\n%s", kind, se)
		}
	}
}
