// Command tables regenerates the tables and figures of the paper's
// evaluation: Tables 1-2 (the NUMA manager's action matrices, derived from
// the implementation), Table 3 (user times and model parameters for the
// application mix), Table 4 (system-time overhead), and Figures 1-2
// (architecture diagrams). Published values are printed alongside measured
// ones.
//
// Usage:
//
//	tables [-nproc N] [-workers N] [-small] [-parallel N] [-timing]
//	       [-table N | -figure N | -exp NAME] [-csv]
//
// -parallel bounds how many independent simulations run concurrently;
// the tables are byte-identical at every setting. -timing reports
// wall-clock time and per-kind simtrace event counts on stderr —
// diagnostics only, never part of a table.
//
// Experiments: falsesharing (§4.2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"numasim/internal/harness"
	"numasim/internal/metrics"
	"numasim/internal/simtrace"
)

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nproc := fs.Int("nproc", 7, "number of processors for parallel runs")
	workers := fs.Int("workers", 0, "worker threads (default: one per processor)")
	smallFlag := fs.Bool("small", false, "use reduced problem sizes")
	table := fs.Int("table", 0, "print only table N (1-4)")
	figure := fs.Int("figure", 0, "print only figure N (1-2)")
	exp := fs.String("exp", "", "print only the named experiment (falsesharing)")
	csv := fs.Bool("csv", false, "emit Tables 3 and 4 as CSV")
	parallel := fs.Int("parallel", 0, "simulations to run concurrently (0: one per host CPU; results are identical at every setting)")
	timing := fs.Bool("timing", false, "report wall-clock run time and simtrace event counts on stderr (diagnostic only; never part of a table)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := harness.Options{NProc: *nproc, Workers: *workers, Small: *smallFlag, Parallelism: *parallel}
	all := *table == 0 && *figure == 0 && *exp == ""

	// Wall-clock time is host-side diagnostics in its own unit type
	// (metrics.WallMicros); the tables themselves carry only virtual
	// seconds (sim.Ticks), and the numalint units analyzer keeps the two
	// from ever mixing. The counting sink rides along on every machine the
	// experiments build: one atomic add per event, aggregated across all
	// concurrent runs.
	start := time.Now()
	var counts *simtrace.CountingSink
	if *timing {
		counts = &simtrace.CountingSink{}
		opts.TraceSink = counts
		defer func() {
			fmt.Fprintf(stderr, "tables: wall time %.1f ms\n", metrics.WallSince(start).Millis())
			fmt.Fprintf(stderr, "tables: %d trace events\n%s", counts.Total(), counts.Render())
		}()
	}

	code := 0
	fail := func(err error) {
		fmt.Fprintln(stderr, "tables:", err)
		code = 1
	}

	if all || *figure == 1 {
		fmt.Fprintln(stdout, harness.Figure1(opts))
	}
	if all || *figure == 2 {
		fmt.Fprintln(stdout, harness.Figure2())
	}
	if all || *table == 1 {
		s, err := harness.ProtocolTable(false)
		if err != nil {
			fail(err)
			return code
		}
		fmt.Fprintln(stdout, s)
	}
	if all || *table == 2 {
		s, err := harness.ProtocolTable(true)
		if err != nil {
			fail(err)
			return code
		}
		fmt.Fprintln(stdout, s)
	}
	if all || *table == 3 {
		rows, err := harness.Table3(opts)
		if err != nil {
			fail(err)
			return code
		}
		if *csv {
			fmt.Fprint(stdout, harness.RenderTable3CSV(rows))
		} else {
			fmt.Fprintln(stdout, harness.RenderTable3(rows))
		}
	}
	if all || *table == 4 {
		rows, err := harness.Table4(opts)
		if err != nil {
			fail(err)
			return code
		}
		if *csv {
			fmt.Fprint(stdout, harness.RenderTable4CSV(rows))
		} else {
			fmt.Fprintln(stdout, harness.RenderTable4(rows))
		}
	}
	if all || *exp == "falsesharing" {
		r, err := harness.FalseSharing(opts)
		if err != nil {
			fail(err)
			return code
		}
		fmt.Fprintln(stdout, r.Render())
	}
	return code
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
