// Command tables regenerates the tables and figures of the paper's
// evaluation: Tables 1-2 (the NUMA manager's action matrices, derived from
// the implementation), Table 3 (user times and model parameters for the
// application mix), Table 4 (system-time overhead), and Figures 1-2
// (architecture diagrams). Published values are printed alongside measured
// ones.
//
// Usage:
//
//	tables [-nproc N] [-topology NAME] [-workers N] [-small] [-parallel N] [-timing]
//	       [-table N | -figure N | -exp NAME] [-csv]
//	       [-app NAME] [-policy SPEC] [-frames LIST] [-chaos-seed N] [-chaos-fail P]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// Run tables -h for the full flag set (the synopsis it prints names
// every flag, and a test keeps it that way).
//
// Every output is an experiment in the harness registry; -exp runs one by
// name (-exp list prints them all), and -table/-figure are shorthand for
// the tableN/figureN entries. -app selects the application for
// experiments that take one (the pressure sweep, ablations), -policy the
// placement policy for single-policy experiments (any registry spec,
// e.g. decaythreshold or threshold:limit=2), -frames the local-frame
// budgets for the pressure sweep, and the -chaos flags enable seeded
// fault injection.
//
// -parallel bounds how many independent simulations run concurrently;
// the tables are byte-identical at every setting. -timing reports
// wall-clock time and per-kind simtrace event counts on stderr —
// diagnostics only, never part of a table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"numasim/internal/chaos"
	"numasim/internal/harness"
	"numasim/internal/metrics"
	"numasim/internal/profiling"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// parseFrames parses a comma-separated list of local-frame budgets.
func parseFrames(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var frames []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -frames entry %q (want positive integers)", part)
		}
		frames = append(frames, n)
	}
	return frames, nil
}

// usageText is the synopsis -h prints before the flag defaults. The
// usage test asserts it mentions every registered flag, so a flag
// cannot be added without extending it.
const usageText = `Usage: tables [flags]

Regenerate the paper's tables and figures, or run one experiment from
the harness registry.

  tables [-nproc N] [-topology ace|4socket|mesh8] [-workers N] [-small]
         [-parallel N] [-timing] [-csv]
  tables -table N | -figure N | -exp NAME               one output (-exp list)
  tables -app NAME -policy SPEC -frames LIST            experiment parameters
  tables -chaos-seed N -chaos-fail P -chaos-delay P     seeded fault injection
         -chaos-panic-at D -chaos-stall-at D            crash/stall drills
  tables -chaos-node-fail 2@10ms-60ms                   degraded-mode failure
         -chaos-link-fail node0-node1@5msx4-9ms         schedules (virtual time)
  tables -audit N -timeout D -retries N                 supervision: auditing,
         -repro-dir DIR -keep-going -stall-limit N      repro bundles, watchdogs
  tables -cpuprofile FILE -memprofile FILE              host profiling

Flags:
`

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(stderr, usageText)
		fs.PrintDefaults()
	}
	nproc := fs.Int("nproc", 7, "number of processors for parallel runs")
	topo := fs.String("topology", "", "machine topology: ace (default), "+strings.Join(topology.Names()[1:], ", "))
	workers := fs.Int("workers", 0, "worker threads (default: one per processor)")
	smallFlag := fs.Bool("small", false, "use reduced problem sizes")
	table := fs.Int("table", 0, "print only table N (1-4)")
	figure := fs.Int("figure", 0, "print only figure N (1-2)")
	exp := fs.String("exp", "", "print only the named experiment (list: print the registry)")
	app := fs.String("app", "", "application for single-app experiments (default: per experiment)")
	polName := fs.String("policy", "", "placement policy for single-policy experiments, as a registry spec like decaythreshold or threshold:limit=2 (default: per experiment)")
	framesFlag := fs.String("frames", "", "comma-separated local-frame budgets for the pressure sweep")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for fault injection (used when a -chaos probability is set)")
	chaosFail := fs.Float64("chaos-fail", 0, "probability a local frame allocation transiently fails (0 disables)")
	chaosDelay := fs.Float64("chaos-delay", 0, "probability a page move is delayed (0 disables)")
	chaosPanicAt := fs.Duration("chaos-panic-at", 0, "inject one panic at this virtual time (crash drill; 0 disables)")
	chaosStallAt := fs.Duration("chaos-stall-at", 0, "inject one virtual-time stall at this virtual time (watchdog drill; 0 disables)")
	chaosNodeFail := fs.String("chaos-node-fail", "", "node failure schedule: comma-separated NODE@OFF[-ON] virtual times, e.g. 2@10ms-60ms")
	chaosLinkFail := fs.String("chaos-link-fail", "", "link failure schedule: comma-separated LINK@AT[xFACTOR][-RESTORE], e.g. node0-node1@5msx4-9ms")
	audit := fs.Int("audit", 0, "online protocol-audit sampling stride (0: off, 1: audit every protocol action, N: sampled)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per supervised run (0: none)")
	retries := fs.Int("retries", 0, "re-run a failed unit up to this many times before giving up")
	reproDir := fs.String("repro-dir", "", "write a repro bundle for each failed run into this directory (implies -keep-going)")
	keepGoing := fs.Bool("keep-going", false, "continue past failed runs and report partial results")
	stallLimit := fs.Int("stall-limit", 0, "engine stall-watchdog threshold in dispatches (0: default)")
	csv := fs.Bool("csv", false, "emit tabular experiments as CSV")
	parallel := fs.Int("parallel", 0, "simulations to run concurrently (0: one per host CPU; results are identical at every setting)")
	timing := fs.Bool("timing", false, "report wall-clock run time and simtrace event counts on stderr (diagnostic only; never part of a table)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the whole run to `file`")
	memProf := fs.String("memprofile", "", "write a heap profile to `file` at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "tables:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "tables:", err)
		}
	}()

	frames, err := parseFrames(*framesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "tables:", err)
		return 2
	}
	opts := harness.Options{
		NProc: *nproc, Workers: *workers, Small: *smallFlag, Parallelism: *parallel,
		App: *app, Policy: *polName, PressureFrames: frames, Topology: *topo,
		Audit: *audit, Timeout: *timeout, Retries: *retries,
		ReproDir: *reproDir, KeepGoing: *keepGoing, StallLimit: *stallLimit,
		Command: "tables " + strings.Join(args, " "),
	}
	if *chaosFail > 0 || *chaosDelay > 0 || *chaosPanicAt > 0 || *chaosStallAt > 0 ||
		*chaosNodeFail != "" || *chaosLinkFail != "" {
		health, err := chaos.ParseHealthSchedule(*chaosNodeFail, *chaosLinkFail)
		if err != nil {
			fmt.Fprintln(stderr, "tables:", err)
			return 2
		}
		cc := chaos.Config{
			Seed: *chaosSeed, FailProb: *chaosFail, DelayProb: *chaosDelay,
			MaxRetries: chaos.DefaultMaxRetries, Backoff: chaos.DefaultBackoff,
			MoveDelay: chaos.DefaultMoveDelay,
			PanicAt:   sim.Time(chaosPanicAt.Nanoseconds()) * sim.Nanosecond,
			StallAt:   sim.Time(chaosStallAt.Nanoseconds()) * sim.Nanosecond,
			Health:    health,
		}
		if err := cc.Validate(); err != nil {
			fmt.Fprintln(stderr, "tables:", err)
			return 2
		}
		opts.Chaos = cc
	}

	if *exp == "list" {
		for _, name := range harness.Names() {
			e, _ := harness.Lookup(name)
			fmt.Fprintf(stdout, "%-16s %s\n", e.Name(), e.Describe())
		}
		return 0
	}

	// The experiments to print, in document order: the whole evaluation by
	// default, or the single table/figure/experiment asked for.
	names := harness.TablesSequence
	switch {
	case *table > 0:
		names = []string{fmt.Sprintf("table%d", *table)}
	case *figure > 0:
		names = []string{fmt.Sprintf("figure%d", *figure)}
	case *exp != "":
		names = []string{*exp}
	}

	// Wall-clock time is host-side diagnostics in its own unit type
	// (metrics.WallMicros); the tables themselves carry only virtual
	// seconds (sim.Ticks), and the numalint units analyzer keeps the two
	// from ever mixing. The counting sink rides along on every machine the
	// experiments build: one atomic add per event, aggregated across all
	// concurrent runs.
	start := time.Now()
	var counts *simtrace.CountingSink
	if *timing {
		counts = &simtrace.CountingSink{}
		opts.TraceSink = counts
		defer func() {
			fmt.Fprintf(stderr, "tables: wall time %.1f ms\n", metrics.WallSince(start).Millis())
			fmt.Fprintf(stderr, "tables: %d trace events\n%s", counts.Total(), counts.Render())
		}()
	}

	for _, name := range names {
		e, ok := harness.Lookup(name)
		if !ok {
			fmt.Fprintf(stderr, "tables: unknown experiment %q (try -exp list)\n", name)
			return 1
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintln(stderr, "tables:", err)
			return 1
		}
		if *csv {
			if c, ok := res.(harness.CSVResult); ok {
				fmt.Fprint(stdout, c.RenderCSV())
				continue
			}
		}
		fmt.Fprintln(stdout, res.Render())
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
