// Command tables regenerates the tables and figures of the paper's
// evaluation: Tables 1-2 (the NUMA manager's action matrices, derived from
// the implementation), Table 3 (user times and model parameters for the
// application mix), Table 4 (system-time overhead), and Figures 1-2
// (architecture diagrams). Published values are printed alongside measured
// ones.
//
// Usage:
//
//	tables [-nproc N] [-workers N] [-small] [-parallel N] [-timing]
//	       [-table N | -figure N | -exp NAME]
//
// Experiments: falsesharing (§4.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"numasim/internal/harness"
	"numasim/internal/metrics"
)

func main() {
	nproc := flag.Int("nproc", 7, "number of processors for parallel runs")
	workers := flag.Int("workers", 0, "worker threads (default: one per processor)")
	smallFlag := flag.Bool("small", false, "use reduced problem sizes")
	table := flag.Int("table", 0, "print only table N (1-4)")
	figure := flag.Int("figure", 0, "print only figure N (1-2)")
	exp := flag.String("exp", "", "print only the named experiment (falsesharing)")
	csv := flag.Bool("csv", false, "emit Tables 3 and 4 as CSV")
	parallel := flag.Int("parallel", 0, "simulations to run concurrently (0: one per host CPU; results are identical at every setting)")
	timing := flag.Bool("timing", false, "report wall-clock run time on stderr (diagnostic only; never part of a table)")
	flag.Parse()

	opts := harness.Options{NProc: *nproc, Workers: *workers, Small: *smallFlag, Parallelism: *parallel}
	all := *table == 0 && *figure == 0 && *exp == ""

	// Wall-clock time is host-side diagnostics in its own unit type
	// (metrics.WallMicros); the tables themselves carry only virtual
	// seconds (sim.Ticks), and the numalint units analyzer keeps the two
	// from ever mixing.
	start := time.Now()
	if *timing {
		defer func() {
			fmt.Fprintf(os.Stderr, "tables: wall time %.1f ms\n", metrics.WallSince(start).Millis())
		}()
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if all || *figure == 1 {
		fmt.Println(harness.Figure1(opts))
	}
	if all || *figure == 2 {
		fmt.Println(harness.Figure2())
	}
	if all || *table == 1 {
		s, err := harness.ProtocolTable(false)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}
	if all || *table == 2 {
		s, err := harness.ProtocolTable(true)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}
	if all || *table == 3 {
		rows, err := harness.Table3(opts)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(harness.RenderTable3CSV(rows))
		} else {
			fmt.Println(harness.RenderTable3(rows))
		}
	}
	if all || *table == 4 {
		rows, err := harness.Table4(opts)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(harness.RenderTable4CSV(rows))
		} else {
			fmt.Println(harness.RenderTable4(rows))
		}
	}
	if all || *exp == "falsesharing" {
		r, err := harness.FalseSharing(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
}
