package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numasim/internal/simtrace"
	"numasim/internal/trace"
)

func TestUsageExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                 // missing FILE
		{"a", "b"},         // too many args
		{"-no-such-flag"},  // unknown flag
		{"-top", "x", "f"}, // bad flag value
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestMissingFileExitsOne(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "nope")}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "traceview:") {
		t.Errorf("stderr should carry the error, got: %s", errb.String())
	}
}

func TestViewsBinaryReferenceTrace(t *testing.T) {
	// An empty collector still produces a well-formed NSTR file.
	path := filepath.Join(t.TempDir(), "ref.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.New(12, true).Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "reference trace") || !strings.Contains(out.String(), "busiest") {
		t.Errorf("reference-trace report unexpected:\n%s", out.String())
	}
}

func TestViewsChromeTraceJSON(t *testing.T) {
	events := []simtrace.Event{
		{Kind: simtrace.KindPageCreated, Proc: -1, Thread: -1, Time: 0, Page: 7},
		{Kind: simtrace.KindSpan, Proc: 0, Thread: 1, Time: 100, Dur: 2000, Page: -1, Label: "worker0"},
		{Kind: simtrace.KindStateChange, Proc: -1, Thread: -1, Time: 150, Page: 7,
			Arg: 1, Arg2: 0, Label: "local-writable"},
		{Kind: simtrace.KindAction, Proc: 0, Thread: 1, Time: 150, Page: 7, Label: "copy to local"},
		{Kind: simtrace.KindSpan, Proc: 1, Thread: 2, Time: 300, Dur: 500, Page: -1, Label: "worker1"},
		{Kind: simtrace.KindPageFreed, Proc: -1, Thread: 1, Time: 2500, Page: 7},
	}
	path := filepath.Join(t.TempDir(), "events.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := simtrace.WriteChrome(f, events, simtrace.ChromeMeta{NProc: 2, Label: "unit"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"Chrome trace-event stream",
		"busy virtual time per track",
		"cpu0", "cpu1",
		"worker0",
		"state changes",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Chrome-trace report missing %q:\n%s", want, got)
		}
	}
}

func TestRejectsGarbageJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "Chrome trace JSON") {
		t.Errorf("stderr should blame the JSON parse, got: %s", errb.String())
	}
}
