// Command traceview analyses the traces acesim writes, auto-detecting the
// format:
//
//   - a binary reference trace from `acesim -traceout FILE` (per-page
//     read/write sharing): overall sharing classes, the busiest pages, and
//     the falsely-shared pages that application tuning (§4.2) could fix;
//   - a Chrome trace-event JSON file from `acesim -trace-out FILE` (the
//     structured simtrace event stream): event counts by phase and name,
//     per-track busy time, and the pages with the most consistency-state
//     changes. The same file loads graphically at ui.perfetto.dev.
//
// Usage:
//
//	traceview [-top N] FILE
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"numasim/internal/trace"
)

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "number of busiest pages to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceview [-top N] FILE")
		fmt.Fprintln(stderr, "  FILE is a binary reference trace (acesim -traceout)")
		fmt.Fprintln(stderr, "  or a Chrome trace-event JSON file (acesim -trace-out)")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	defer f.Close()

	br := bufio.NewReader(f)
	magic, err := br.Peek(1)
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	if magic[0] == '{' || magic[0] == '[' {
		err = viewChrome(br, stdout, *top)
	} else {
		err = viewRefTrace(br, stdout, *top)
	}
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	return 0
}

// viewRefTrace reports on a binary reference trace (acesim -traceout).
func viewRefTrace(r io.Reader, stdout io.Writer, top int) error {
	c, err := trace.Load(r)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, c.Summarize().Render())
	pages := c.Pages()
	sort.Slice(pages, func(i, j int) bool {
		return pages[i].Reads+pages[i].Writes > pages[j].Reads+pages[j].Writes
	})
	if len(pages) > top {
		pages = pages[:top]
	}
	fmt.Fprintf(stdout, "\nbusiest %d pages:\n", len(pages))
	fmt.Fprintf(stdout, "  %-10s %-16s %7s %7s %9s %9s %s\n",
		"page", "class", "readers", "writers", "reads", "writes", "")
	for _, p := range pages {
		note := ""
		if p.FalselyShared {
			note = "FALSELY SHARED — consider padding/segregating (§4.2)"
		}
		fmt.Fprintf(stdout, "  %#-10x %-16s %7d %7d %9d %9d %s\n",
			uint64(p.VPN)<<c.PageShift(), p.Class, p.Readers, p.Writers, p.Reads, p.Writes, note)
	}
	return nil
}

// chromeEvent is the subset of the trace-event schema the report uses.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

// viewChrome reports on a Chrome trace-event JSON file (acesim -trace-out).
func viewChrome(r io.Reader, stdout io.Writer, top int) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("parsing Chrome trace JSON: %w", err)
	}

	trackName := map[int]string{}
	byName := map[string]int{}
	busy := map[int]float64{} // per-tid µs occupied by complete events
	changes := map[string]int{}
	var spans, instants, metas, asyncs int
	var firstTS, lastTS float64
	sawTS := false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name == "thread_name" {
				if n, ok := ev.Args["name"].(string); ok {
					trackName[ev.Tid] = n
				}
			}
			continue
		case "X":
			spans++
			busy[ev.Tid] += ev.Dur
			byName[ev.Name]++
		case "i":
			instants++
			byName[ev.Name]++
		case "b", "e", "n":
			asyncs++
			if ev.Ph == "n" {
				changes[ev.ID]++
			}
		default:
			byName[ev.Ph+":"+ev.Name]++
		}
		if !sawTS || ev.Ts < firstTS {
			firstTS = ev.Ts
		}
		if !sawTS || ev.Ts+ev.Dur > lastTS {
			lastTS = ev.Ts + ev.Dur
			sawTS = true
		}
	}

	fmt.Fprintf(stdout, "Chrome trace-event stream: %d events (%d spans, %d instants, %d page-track, %d metadata)\n",
		len(doc.TraceEvents), spans, instants, asyncs, metas)
	fmt.Fprintf(stdout, "  virtual span: %.3f ms\n", (lastTS-firstTS)/1000)

	fmt.Fprintln(stdout, "\nbusy virtual time per track:")
	tids := make([]int, 0, len(busy))
	for tid := range busy {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		name := trackName[tid]
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		fmt.Fprintf(stdout, "  %-8s %12.3f ms\n", name, busy[tid]/1000)
	}

	fmt.Fprintln(stdout, "\nevent counts by name:")
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if byName[names[i]] != byName[names[j]] {
			return byName[names[i]] > byName[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > top {
		names = names[:top]
	}
	for _, n := range names {
		fmt.Fprintf(stdout, "  %-28s %9d\n", n, byName[n])
	}

	if len(changes) > 0 {
		ids := make([]string, 0, len(changes))
		for id := range changes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if changes[ids[i]] != changes[ids[j]] {
				return changes[ids[i]] > changes[ids[j]]
			}
			return ids[i] < ids[j]
		})
		if len(ids) > top {
			ids = ids[:top]
		}
		fmt.Fprintf(stdout, "\npages with the most consistency-state changes (top %d):\n", len(ids))
		for _, id := range ids {
			fmt.Fprintf(stdout, "  %-10s %6d state changes\n", id, changes[id])
		}
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
