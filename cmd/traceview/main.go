// Command traceview analyses a reference trace captured with
// `acesim -traceout FILE`: overall sharing classes, the busiest pages, and
// the falsely-shared pages that application tuning (§4.2) could fix.
//
// Usage:
//
//	traceview [-top N] FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"numasim/internal/trace"
)

func main() {
	top := flag.Int("top", 10, "number of busiest pages to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-top N] FILE")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	defer f.Close()
	c, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}

	fmt.Print(c.Summarize().Render())
	pages := c.Pages()
	sort.Slice(pages, func(i, j int) bool {
		return pages[i].Reads+pages[i].Writes > pages[j].Reads+pages[j].Writes
	})
	if len(pages) > *top {
		pages = pages[:*top]
	}
	fmt.Printf("\nbusiest %d pages:\n", len(pages))
	fmt.Printf("  %-10s %-16s %7s %7s %9s %9s %s\n",
		"page", "class", "readers", "writers", "reads", "writes", "")
	for _, p := range pages {
		note := ""
		if p.FalselyShared {
			note = "FALSELY SHARED — consider padding/segregating (§4.2)"
		}
		fmt.Printf("  %#-10x %-16s %7d %7d %9d %9d %s\n",
			uint64(p.VPN)<<c.PageShift(), p.Class, p.Readers, p.Writers, p.Reads, p.Writes, note)
	}
}
