package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numasim/internal/benchfmt"
)

const sample = `goos: linux
goarch: amd64
BenchmarkLocalAccess-8  5403738  214.6 ns/op  0 B/op  0 allocs/op
BenchmarkTable3/FFT-8   100  9879912 ns/op  0.9921 alpha  1103 allocs/op
PASS
`

func TestRunStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-date", "2026-08-08"}, strings.NewReader(sample), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var f benchfmt.File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if f.Date != "2026-08-08" || len(f.Benchmarks) != 2 {
		t.Errorf("bad file: %+v", f)
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var out, errb bytes.Buffer
	code := run([]string{"-date", "2026-08-08", "-o", path}, strings.NewReader(sample), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BenchmarkLocalAccess") {
		t.Errorf("file missing benchmark: %s", data)
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &out, &errb); code != 1 {
		t.Errorf("exit %d on empty input, want 1", code)
	}
	if code := run([]string{"positional"}, strings.NewReader(sample), &out, &errb); code != 2 {
		t.Errorf("exit %d on positional arg, want 2", code)
	}
}
