// Command benchjson converts `go test -bench -benchmem` text output into
// the repo's tracked benchmark JSON (the BENCH_<date>.json files that
// cmd/benchdiff compares and CI gates on).
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | benchjson [-date YYYY-MM-DD] [-o FILE]
//
// The input is read from stdin; the JSON goes to stdout unless -o names
// a file. -date stamps the run (default: today).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"numasim/internal/benchfmt"
)

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	date := fs.String("date", "", "date stamp for the run (default: today)")
	out := fs.String("o", "", "write JSON to `file` instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "benchjson: reads bench output from stdin; no positional arguments")
		return 2
	}
	f, err := benchfmt.Parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	f.Date = *date
	if f.Date == "" {
		f.Date = time.Now().Format("2006-01-02")
	}
	w := stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	if err := f.Write(w); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
