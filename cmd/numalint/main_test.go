package main

import (
	"os"
	"path/filepath"
	"testing"

	"numasim/internal/analysis"
	"numasim/internal/analysis/load"
)

// TestRepositoryIsClean runs every analyzer over the whole module: the
// invariants numalint enforces are part of the test suite, not just an
// optional lint step.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/numalint -> module root
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(f.Diag.Pos), f.Analyzer.Name, f.Diag.Message)
		}
	}
}
