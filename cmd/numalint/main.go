// Command numalint runs the repository's static analyzers: determinism
// (no wall clocks or ambient entropy in the simulator core), maporder (no
// ordered output from randomized map iteration), statemachine (exhaustive
// switches and guarded Table 1/2 transitions), units (no mixing of
// simulated-time and wall-clock scales), violation (protocol panics in
// internal/numa must carry a typed ProtocolViolationError), hotpath
// (//numalint:hotpath functions are transitively allocation-free over the
// package call graph), atomicmix (no field accessed both through
// sync/atomic and plain loads/stores) and oracleparity (every mutation of
// oracle-guarded dense state routes through a function that feeds the
// shadow oracle).
//
// Two modes share one binary:
//
//	numalint ./...                     # standalone: analyze packages
//	go vet -vettool=$(make numalint) ./...   # under the go build cache
//
// The vettool mode is selected automatically when the go command invokes
// the binary with -V=full, -flags or a .cfg unit file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"numasim/internal/analysis"
	"numasim/internal/analysis/load"
	"numasim/internal/analysis/passes/atomicmix"
	"numasim/internal/analysis/passes/determinism"
	"numasim/internal/analysis/passes/hotpath"
	"numasim/internal/analysis/passes/maporder"
	"numasim/internal/analysis/passes/oracleparity"
	"numasim/internal/analysis/passes/statemachine"
	"numasim/internal/analysis/passes/units"
	"numasim/internal/analysis/passes/violation"
	"numasim/internal/analysis/vettool"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	maporder.Analyzer,
	statemachine.Analyzer,
	units.Analyzer,
	violation.Analyzer,
	hotpath.Analyzer,
	atomicmix.Analyzer,
	oracleparity.Analyzer,
}

func main() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	args := os.Args[1:]

	// The go command's vettool protocol: version/flags queries, or a
	// single .cfg compilation unit.
	if len(args) == 1 && (strings.HasPrefix(args[0], "-V") || args[0] == "-flags" || filepath.Ext(args[0]) == ".cfg") {
		os.Exit(vettool.Main(progname, args, analyzers))
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-list] [-only a,b] packages...\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: unknown analyzer %q\n", progname, name)
				os.Exit(1)
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}

	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, pkg.PkgPath, err)
			os.Exit(1)
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(f.Diag.Pos), f.Analyzer.Name, f.Diag.Message)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d finding(s)\n", progname, total)
		os.Exit(2)
	}
}
