// Command acesim runs one or more of the paper's applications on the
// simulated ACE under a chosen NUMA policy and reports timing, placement
// and reference statistics — optionally with a reference trace,
// false-sharing analysis (§4.2, §5), and a structured event trace
// exported as Chrome trace-event JSON for Perfetto.
//
// Usage:
//
//	acesim -app IMatMult [-policy threshold] [-threshold 4] [-nproc 7]
//	       [-topology ace|4socket|mesh8]
//	       [-workers N] [-sched affinity] [-trace] [-traceout FILE]
//	       [-trace-out FILE] [-unixmaster] [-pagesize N] [-size N]
//	       [-perproc] [-replication=false] [-parallel N]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// Run acesim -h for the full flag set (the synopsis it prints names
// every flag, and a test keeps it that way).
//
// -app accepts a comma-separated list (names are case-insensitive); the
// simulations run concurrently (bounded by -parallel; results are
// identical at every setting) and the reports print in the order given.
//
// -traceout saves the per-page reference trace in the binary format
// traceview analyzes; -trace-out saves the structured event trace as
// Chrome trace-event JSON, loadable at ui.perfetto.dev (one track per
// processor, async tracks for page lifetimes). Both require a single -app.
//
// -exp NAME runs a harness-registry experiment instead of a single app
// (the same registry the tables command prints from; -exp list names
// them). The pressure sweep takes -frames for its local-frame budgets,
// and the -chaos-seed/-chaos-fail/-chaos-delay flags enable seeded fault
// injection.
//
// Policies are registry specs of the form "name:key=val,..." (see
// policy.Usage): threshold (default), allglobal, alllocal, neverpin,
// pragma, reconsider, freezedefrost, decaythreshold, bandit, classifier,
// coplace. Parameters ride on the spec ("threshold:limit=2"); the old
// spelling of passing a bare name plus -threshold still works but is
// deprecated in favour of the spec syntax. Apps: ParMult, Gfetch,
// IMatMult, Primes1, Primes2, Primes2-untuned, Primes3, FFT, PlyTrace,
// plus the Phased and Zipf policy probes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/cthreads"
	"numasim/internal/harness"
	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/profiling"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
	"numasim/internal/trace"
	"numasim/internal/vm"
	"numasim/internal/workloads"
)

// runOpts carries the per-run configuration shared by every -app entry.
type runOpts struct {
	polName     string
	threshold   int
	topology    string
	nproc       int
	workers     int
	mode        sched.Mode
	doTrace     bool
	traceOut    string
	chromeOut   string
	unixMaster  bool
	pageSize    int
	size        int
	perProc     bool
	replication bool
	audit       int
	stallLimit  int
	forensics   bool
	chaos       chaos.Config
}

// runOne simulates one application and returns its rendered report.
// observe is the supervisor's machine hook (never nil; a no-op without
// supervision).
func runOne(app string, o runOpts, observe func(*ace.Machine)) (string, error) {
	var w workloads.Workload
	var err error
	if o.size > 0 {
		w, err = workloads.NewSized(app, o.size)
	} else {
		w, err = workloads.ByName(app)
	}
	if err != nil {
		return "", err
	}
	pol, err := policy.ByName(o.polName, o.threshold)
	if err != nil {
		return "", err
	}

	cfg := ace.DefaultConfig()
	cfg.NProc = o.nproc
	cfg.PageSize = o.pageSize
	cfg.Topology = o.topology
	machine, err := ace.NewMachine(cfg)
	if err != nil {
		return "", err
	}
	if o.stallLimit != 0 {
		machine.Engine().StallLimit = o.stallLimit
	}
	kernel := vm.NewKernel(machine, pol)
	kernel.UnixMaster = o.unixMaster
	if !o.replication {
		kernel.NUMA().SetReplication(false)
	}
	var collector *trace.Collector
	if o.doTrace || o.traceOut != "" {
		collector = trace.New(machine.PageShift(), true)
		kernel.RefTrace = collector.Hook()
	}
	var events *simtrace.ListSink
	var sink simtrace.Sink
	if o.chromeOut != "" {
		events = &simtrace.ListSink{}
		sink = events
	}
	// Forensics and auditing share a ring of recent events; the Chrome
	// export keeps receiving everything through a tee.
	var ring *simtrace.RingSink
	if o.forensics || o.audit > 0 {
		ring = simtrace.NewRingSink(256)
		if sink != nil {
			sink = simtrace.Tee(sink, ring)
		} else {
			sink = ring
		}
	}
	if sink != nil {
		machine.AttachSink(sink)
	}
	if o.chaos.Enabled() {
		kernel.NUMA().SetChaos(chaos.New(o.chaos))
	}
	if o.audit > 0 || ring != nil {
		kernel.NUMA().EnableAudit(o.audit, ring)
	}
	observe(machine)
	rt := cthreads.New(kernel, o.mode)
	if o.chaos.HealthEnabled() {
		if err := metrics.StartHealthDriver(machine, kernel.NUMA(), rt.Scheduler(), o.chaos); err != nil {
			return "", err
		}
	}

	if err := w.Run(rt, o.workers); err != nil {
		if o.forensics {
			re := &metrics.RunError{
				Workload: w.Name(), Policy: pol.Name(), Err: err,
				Dump: machine.Engine().DumpState().Render(),
			}
			if ring != nil {
				re.Events = ring.Events()
			}
			return "", re
		}
		return "", err
	}

	var b strings.Builder
	eng := machine.Engine()
	fmt.Fprintf(&b, "%s on %d CPUs under %s (%s scheduler)\n", w.Name(), o.nproc, pol.Name(), o.mode)
	fmt.Fprintf(&b, "  user time:   %v\n", eng.TotalUserTime())
	fmt.Fprintf(&b, "  system time: %v\n", eng.TotalSysTime())
	refs := machine.TotalRefs()
	fmt.Fprintf(&b, "  references:  %d (%.1f%% local)\n", refs.Total(), 100*refs.LocalFraction())
	fmt.Fprintf(&b, "  faults:      %d\n", machine.TotalFaults())
	ns := kernel.NUMA().Stats()
	fmt.Fprintf(&b, "  protocol:    %d copies, %d syncs, %d flushes, %d moves, %d pins\n",
		ns.Copies, ns.Syncs, ns.Flushes, ns.Moves, ns.Pins)
	var aliasDrops uint64
	for i := 0; i < machine.NProc(); i++ {
		aliasDrops += machine.MMU(i).Stats().AliasDrops
	}
	fmt.Fprintf(&b, "  mmu:         %d alias drops (Rosetta one-VA-per-frame rule)\n", aliasDrops)
	vs := kernel.Stats()
	fmt.Fprintf(&b, "  paging:      %d zero-fills, %d pageouts, %d pageins, %d COW copies\n",
		vs.ZeroFillFaults, vs.Pageouts, vs.Pageins, vs.COWCopies)
	if ls := machine.Topo().LinkStats(); ls != nil {
		fmt.Fprintf(&b, "  interconnect (%s):\n", machine.Spec().Name())
		for _, l := range ls {
			fmt.Fprintf(&b, "    %-8s %8d xfers %12d bytes  busy %v  queued %v\n",
				l.Name, l.Xfers, l.Bytes, l.Service, l.Waited)
		}
	}
	if o.perProc {
		fmt.Fprintln(&b, "  per processor:")
		for i := 0; i < machine.NProc(); i++ {
			r := machine.Proc(i).Refs()
			fmt.Fprintf(&b, "    cpu%-2d  local %9d  global %9d  remote %7d  faults %6d\n",
				i, r.LocalFetch+r.LocalStore, r.GlobalFetch+r.GlobalStore,
				r.RemoteFetch+r.RemoteStore, machine.Proc(i).Faults)
		}
	}
	if collector != nil {
		fmt.Fprintln(&b)
		b.WriteString(collector.Summarize().Render())
		if o.traceOut != "" {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return "", err
			}
			if err := collector.Save(f); err != nil {
				f.Close()
				return "", err
			}
			if err := f.Close(); err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "trace written to %s\n", o.traceOut)
		}
	}
	if events != nil {
		f, err := os.Create(o.chromeOut)
		if err != nil {
			return "", err
		}
		meta := simtrace.ChromeMeta{NProc: machine.NProc(), Label: w.Name()}
		if err := simtrace.WriteChrome(f, events.Events(), meta); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "event trace (%d events) written to %s — load it at ui.perfetto.dev\n",
			len(events.Events()), o.chromeOut)
	}
	return b.String(), nil
}

// usageText is the synopsis -h prints before the flag defaults. The
// usage test asserts it mentions every registered flag, so a flag
// cannot be added without extending it.
const usageText = `Usage: acesim [flags]

Simulate the paper's applications on the ACE under a NUMA placement
policy and report timing, placement and reference statistics.

  acesim -app IMatMult[,Gfetch,...] [-policy SPEC] [-threshold N]
         [-nproc N] [-topology ace|4socket|mesh8] [-workers N]
         [-sched affinity|noaffinity] [-pagesize BYTES] [-size N]
         [-unixmaster] [-perproc] [-replication=false] [-parallel N]
  acesim -trace [-traceout FILE] [-trace-out FILE]      reference/event traces
  acesim -exp NAME [-frames LIST]                       registry experiments (-exp list)
  acesim -chaos-seed N -chaos-fail P -chaos-delay P     seeded fault injection
         -chaos-panic-at D -chaos-stall-at D            crash/stall drills
  acesim -chaos-node-fail 2@10ms-60ms                   degraded-mode failure
         -chaos-link-fail node0-node1@5msx4-9ms         schedules (virtual time)
  acesim -audit N -timeout D -retries N                 supervision: auditing,
         -repro-dir DIR -keep-going -stall-limit N      repro bundles, watchdogs
  acesim -cpuprofile FILE -memprofile FILE              host profiling

Flags:
`

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(stderr, usageText)
		fs.PrintDefaults()
	}
	app := fs.String("app", "IMatMult", "application to run, or a comma-separated list (case-insensitive)")
	polName := fs.String("policy", "threshold", "placement policy, as a registry spec like decaythreshold or threshold:limit=2")
	threshold := fs.Int("threshold", policy.DefaultThreshold, "move limit for the threshold policy (deprecated: prefer -policy threshold:limit=N)")
	nproc := fs.Int("nproc", 7, "number of processors")
	topo := fs.String("topology", "", "machine topology: ace (default), "+strings.Join(topology.Names()[1:], ", "))
	workers := fs.Int("workers", 0, "worker threads (default: one per processor)")
	schedName := fs.String("sched", "affinity", "scheduler: affinity or noaffinity")
	doTrace := fs.Bool("trace", false, "collect a reference trace and report sharing classes")
	traceOut := fs.String("traceout", "", "save the reference trace to this file in traceview's binary format (implies -trace)")
	chromeOut := fs.String("trace-out", "", "save the structured event trace to this file as Chrome trace-event JSON (Perfetto)")
	unixMaster := fs.Bool("unixmaster", false, "funnel system calls to processor 0 (§4.6)")
	pageSize := fs.Int("pagesize", 4096, "page size in bytes")
	size := fs.Int("size", 0, "problem size (0: workload default); units for ParMult, pages for Gfetch, matrix side for IMatMult/FFT, limit for Primes1-3, triangles for PlyTrace")
	perProc := fs.Bool("perproc", false, "report per-processor reference counts")
	replication := fs.Bool("replication", true, "replicate read-only pages (disable for the Li-style migration ablation)")
	parallel := fs.Int("parallel", 0, "simulations to run concurrently when -app lists several (0: one per host CPU; results are identical at every setting)")
	exp := fs.String("exp", "", "run a harness experiment instead of a single app (list: print the registry); -app, -nproc, -workers, -threshold and -parallel apply")
	framesFlag := fs.String("frames", "", "comma-separated local-frame budgets for -exp pressuresweep")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for fault injection")
	chaosFail := fs.Float64("chaos-fail", 0, "probability a local frame allocation transiently fails (0 disables)")
	chaosDelay := fs.Float64("chaos-delay", 0, "probability a page move is delayed (0 disables)")
	chaosPanicAt := fs.Duration("chaos-panic-at", 0, "inject one panic at this virtual time (crash drill; 0 disables)")
	chaosStallAt := fs.Duration("chaos-stall-at", 0, "inject one virtual-time stall at this virtual time (watchdog drill; 0 disables)")
	chaosNodeFail := fs.String("chaos-node-fail", "", "node failure schedule: comma-separated NODE@OFF[-ON] virtual times, e.g. 2@10ms-60ms")
	chaosLinkFail := fs.String("chaos-link-fail", "", "link failure schedule: comma-separated LINK@AT[xFACTOR][-RESTORE], e.g. node0-node1@5msx4-9ms")
	audit := fs.Int("audit", 0, "online protocol-audit sampling stride (0: off, 1: audit every protocol action, N: sampled)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per supervised run (0: none)")
	retries := fs.Int("retries", 0, "re-run a failed unit up to this many times before giving up")
	reproDir := fs.String("repro-dir", "", "write a repro bundle for each failed run into this directory (implies -keep-going)")
	keepGoing := fs.Bool("keep-going", false, "continue past failed runs and report partial results")
	stallLimit := fs.Int("stall-limit", 0, "engine stall-watchdog threshold in dispatches (0: default)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the whole run to `file`")
	memProf := fs.String("memprofile", "", "write a heap profile to `file` at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "acesim:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "acesim:", err)
		}
	}()

	mode, err := sched.ParseMode(*schedName)
	if err != nil {
		fmt.Fprintln(stderr, "acesim:", err)
		return 2
	}

	command := "acesim " + strings.Join(args, " ")
	cc, err := chaosConfig(*chaosSeed, *chaosFail, *chaosDelay, *chaosPanicAt, *chaosStallAt, *chaosNodeFail, *chaosLinkFail)
	if err != nil {
		fmt.Fprintln(stderr, "acesim:", err)
		return 2
	}

	if *exp != "" {
		return runExperiment(*exp, experimentOptions{
			app: *app, appSet: flagWasSet(fs, "app"),
			policy: *polName, polSet: flagWasSet(fs, "policy"),
			nproc: *nproc, topology: *topo,
			workers: *workers, threshold: *threshold, parallel: *parallel,
			frames: *framesFlag, chaos: cc,
			audit: *audit, timeout: *timeout, retries: *retries,
			reproDir: *reproDir, keepGoing: *keepGoing, stallLimit: *stallLimit,
			command: command,
		}, stdout, stderr)
	}

	apps := strings.Split(*app, ",")
	for i := range apps {
		apps[i] = strings.TrimSpace(apps[i])
	}
	if len(apps) > 1 && *traceOut != "" {
		fmt.Fprintln(stderr, "acesim: -traceout requires a single -app (the file would be overwritten)")
		return 1
	}
	if len(apps) > 1 && *chromeOut != "" {
		fmt.Fprintln(stderr, "acesim: -trace-out requires a single -app (the file would be overwritten)")
		return 1
	}

	// Supervision (timeout, retries, repro bundles) is configured through
	// harness options; with none of the flags set, sup.Supervise runs the
	// simulation directly.
	sup := harness.Options{
		NProc: *nproc, Workers: *workers, Threshold: *threshold, App: *app,
		Topology: *topo,
		Chaos:    cc, Audit: *audit, Timeout: *timeout, Retries: *retries,
		ReproDir: *reproDir, KeepGoing: *keepGoing, StallLimit: *stallLimit,
		Command: command,
	}
	o := runOpts{
		polName:   *polName,
		threshold: *threshold,
		topology:  *topo,
		nproc:     *nproc,
		workers:   *workers,
		mode:      mode,
		doTrace:   *doTrace, traceOut: *traceOut, chromeOut: *chromeOut,
		unixMaster: *unixMaster,
		pageSize:   *pageSize,
		size:       *size,
		perProc:    *perProc, replication: *replication,
		audit: *audit, stallLimit: *stallLimit,
		forensics: *audit > 0 || *timeout > 0 || *retries > 0 || *reproDir != "",
		chaos:     cc,
	}

	// Run every app concurrently (bounded), buffer the reports, and print
	// them in the order given on the command line.
	reports := make([]string, len(apps))
	errs := harness.NewPool(*parallel).RunAll(len(apps), func(i int) error {
		return sup.Supervise(apps[i], func(observe func(*ace.Machine)) error {
			rep, err := runOne(apps[i], o, observe)
			if err != nil {
				return fmt.Errorf("%s: %w", apps[i], err)
			}
			reports[i] = rep
			return nil
		})
	})
	failed := false
	for i, rerr := range errs {
		if rerr == nil {
			continue
		}
		failed = true
		fmt.Fprintln(stderr, "acesim:", rerr)
		if !*keepGoing && *reproDir == "" {
			return 1
		}
		reports[i] = fmt.Sprintf("%s: failed: %v\n", apps[i], firstLine(rerr.Error()))
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, rep)
	}
	if failed {
		return 1
	}
	return 0
}

// firstLine truncates multi-line error text (panic stacks) for reports.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// simTime converts a wall-style flag duration into virtual time (both
// are nanosecond-granular).
func simTime(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond
}

// chaosConfig assembles and validates the chaos configuration from the
// CLI flags; the zero value (all flags unset) means chaos off.
func chaosConfig(seed int64, fail, delay float64, panicAt, stallAt time.Duration, nodeFail, linkFail string) (chaos.Config, error) {
	if fail <= 0 && delay <= 0 && panicAt <= 0 && stallAt <= 0 && nodeFail == "" && linkFail == "" {
		return chaos.Config{}, nil
	}
	health, err := chaos.ParseHealthSchedule(nodeFail, linkFail)
	if err != nil {
		return chaos.Config{}, err
	}
	cc := chaos.Config{
		Seed: seed, FailProb: fail, DelayProb: delay,
		MaxRetries: chaos.DefaultMaxRetries, Backoff: chaos.DefaultBackoff,
		MoveDelay: chaos.DefaultMoveDelay,
		PanicAt:   simTime(panicAt), StallAt: simTime(stallAt),
		Health: health,
	}
	return cc, cc.Validate()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
