// Command acesim runs one of the paper's applications on the simulated
// ACE under a chosen NUMA policy and reports timing, placement and
// reference statistics — optionally with a reference trace and
// false-sharing analysis (§4.2, §5).
//
// Usage:
//
//	acesim -app IMatMult [-policy threshold] [-threshold 4] [-nproc 7]
//	       [-workers N] [-sched affinity] [-trace] [-unixmaster]
//
// Policies: threshold (default), allglobal, alllocal, neverpin, pragma,
// reconsider, freezedefrost. Apps: ParMult, Gfetch, IMatMult, Primes1, Primes2,
// Primes2-untuned, Primes3, FFT, PlyTrace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numasim/internal/ace"
	"numasim/internal/cthreads"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/trace"
	"numasim/internal/vm"
	"numasim/internal/workloads"
)

func main() {
	app := flag.String("app", "IMatMult", "application to run")
	polName := flag.String("policy", "threshold", "placement policy")
	threshold := flag.Int("threshold", policy.DefaultThreshold, "move limit for the threshold policy")
	nproc := flag.Int("nproc", 7, "number of processors")
	workers := flag.Int("workers", 0, "worker threads (default: one per processor)")
	schedName := flag.String("sched", "affinity", "scheduler: affinity or noaffinity")
	doTrace := flag.Bool("trace", false, "collect a reference trace and report sharing classes")
	traceOut := flag.String("traceout", "", "save the reference trace to this file (implies -trace)")
	unixMaster := flag.Bool("unixmaster", false, "funnel system calls to processor 0 (§4.6)")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes")
	size := flag.Int("size", 0, "problem size (0: workload default); units for ParMult, pages for Gfetch, matrix side for IMatMult/FFT, limit for Primes1-3, triangles for PlyTrace")
	perProc := flag.Bool("perproc", false, "report per-processor reference counts")
	replication := flag.Bool("replication", true, "replicate read-only pages (disable for the Li-style migration ablation)")
	flag.Parse()

	var w workloads.Workload
	var err error
	if *size > 0 {
		w, err = workloads.NewSized(*app, *size)
	} else {
		w, err = workloads.ByName(*app)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acesim:", err)
		os.Exit(1)
	}

	var pol numa.Policy
	switch strings.ToLower(*polName) {
	case "threshold":
		pol = policy.NewThreshold(*threshold)
	case "allglobal":
		pol = policy.AllGlobal{}
	case "alllocal":
		pol = policy.AllLocal{}
	case "neverpin":
		pol = policy.NeverPin()
	case "pragma":
		pol = policy.NewPragma(nil)
	case "reconsider":
		pol = policy.NewReconsider(*threshold, 64)
	case "freezedefrost":
		pol = policy.NewFreezeDefrost(0, 0)
	default:
		fmt.Fprintf(os.Stderr, "acesim: unknown policy %q\n", *polName)
		os.Exit(1)
	}

	mode := sched.Affinity
	if strings.HasPrefix(strings.ToLower(*schedName), "no") {
		mode = sched.NoAffinity
	}

	cfg := ace.DefaultConfig()
	cfg.NProc = *nproc
	cfg.PageSize = *pageSize
	machine := ace.NewMachine(cfg)
	kernel := vm.NewKernel(machine, pol)
	kernel.UnixMaster = *unixMaster
	if !*replication {
		kernel.NUMA().SetReplication(false)
	}
	var collector *trace.Collector
	if *doTrace || *traceOut != "" {
		collector = trace.New(machine.PageShift(), true)
		kernel.RefTrace = collector.Hook()
	}
	rt := cthreads.New(kernel, mode)

	if err := w.Run(rt, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "acesim:", err)
		os.Exit(1)
	}

	eng := machine.Engine()
	fmt.Printf("%s on %d CPUs under %s (%s scheduler)\n", w.Name(), *nproc, pol.Name(), mode)
	fmt.Printf("  user time:   %v\n", eng.TotalUserTime())
	fmt.Printf("  system time: %v\n", eng.TotalSysTime())
	refs := machine.TotalRefs()
	fmt.Printf("  references:  %d (%.1f%% local)\n", refs.Total(), 100*refs.LocalFraction())
	fmt.Printf("  faults:      %d\n", machine.TotalFaults())
	ns := kernel.NUMA().Stats()
	fmt.Printf("  protocol:    %d copies, %d syncs, %d flushes, %d moves, %d pins\n",
		ns.Copies, ns.Syncs, ns.Flushes, ns.Moves, ns.Pins)
	var aliasDrops uint64
	for i := 0; i < machine.NProc(); i++ {
		aliasDrops += machine.MMU(i).Stats().AliasDrops
	}
	fmt.Printf("  mmu:         %d alias drops (Rosetta one-VA-per-frame rule)\n", aliasDrops)
	vs := kernel.Stats()
	fmt.Printf("  paging:      %d zero-fills, %d pageouts, %d pageins, %d COW copies\n",
		vs.ZeroFillFaults, vs.Pageouts, vs.Pageins, vs.COWCopies)
	if *perProc {
		fmt.Println("  per processor:")
		for i := 0; i < machine.NProc(); i++ {
			r := machine.Proc(i).Refs()
			fmt.Printf("    cpu%-2d  local %9d  global %9d  remote %7d  faults %6d\n",
				i, r.LocalFetch+r.LocalStore, r.GlobalFetch+r.GlobalStore,
				r.RemoteFetch+r.RemoteStore, machine.Proc(i).Faults)
		}
	}
	if collector != nil {
		fmt.Println()
		fmt.Print(collector.Summarize().Render())
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acesim:", err)
				os.Exit(1)
			}
			if err := collector.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, "acesim:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "acesim:", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
	}
}
