package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"numasim/internal/chaos"
	"numasim/internal/harness"
)

// experimentOptions carries the subset of acesim's flags that apply to a
// registry experiment run.
type experimentOptions struct {
	app        string
	appSet     bool // whether -app was given explicitly
	policy     string
	polSet     bool // whether -policy was given explicitly
	topology   string
	nproc      int
	workers    int
	threshold  int
	parallel   int
	frames     string
	chaos      chaos.Config
	audit      int
	timeout    time.Duration
	retries    int
	reproDir   string
	keepGoing  bool
	stallLimit int
	command    string
}

// flagWasSet reports whether the named flag appeared on the command line
// (as opposed to holding its default).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseFrames parses a comma-separated list of local-frame budgets.
func parseFrames(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var frames []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -frames entry %q (want positive integers)", part)
		}
		frames = append(frames, n)
	}
	return frames, nil
}

// runExperiment executes one harness-registry experiment ("list" prints
// the registry) and returns the process exit code.
func runExperiment(name string, eo experimentOptions, stdout, stderr io.Writer) int {
	if name == "list" {
		for _, n := range harness.Names() {
			e, _ := harness.Lookup(n)
			fmt.Fprintf(stdout, "%-16s %s\n", e.Name(), e.Describe())
		}
		return 0
	}
	e, ok := harness.Lookup(name)
	if !ok {
		fmt.Fprintf(stderr, "acesim: unknown experiment %q (try -exp list)\n", name)
		return 1
	}
	frames, err := parseFrames(eo.frames)
	if err != nil {
		fmt.Fprintln(stderr, "acesim:", err)
		return 2
	}
	opts := harness.Options{
		NProc: eo.nproc, Workers: eo.workers, Threshold: eo.threshold,
		Topology:    eo.topology,
		Parallelism: eo.parallel, PressureFrames: frames, Chaos: eo.chaos,
		Audit: eo.audit, Timeout: eo.timeout, Retries: eo.retries,
		ReproDir: eo.reproDir, KeepGoing: eo.keepGoing,
		StallLimit: eo.stallLimit, Command: eo.command,
	}
	// -app has a single-run default (IMatMult) that should not override an
	// experiment's own default application; only pass it through when the
	// user actually chose one.
	if eo.appSet {
		opts.App = eo.app
	}
	// Likewise -policy: its single-run default (threshold) must not
	// override an experiment's own policy choice.
	if eo.polSet {
		opts.Policy = eo.policy
	}
	res, err := e.Run(opts)
	if err != nil {
		fmt.Fprintln(stderr, "acesim:", err)
		return 1
	}
	fmt.Fprintln(stdout, res.Render())
	return 0
}
