package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage") && !strings.Contains(errb.String(), "flag") {
		t.Errorf("stderr should show usage, got: %s", errb.String())
	}
}

func TestUnknownAppFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-app", "NoSuchApp"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "NoSuchApp") {
		t.Errorf("stderr should name the unknown app, got: %s", errb.String())
	}
}

func TestUnknownPolicyFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-app", "FFT", "-size", "16", "-policy", "bogus"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Errorf("stderr should name the unknown policy, got: %s", errb.String())
	}
}

func TestSmallRunReport(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-app", "fft", "-size", "16", "-nproc", "3"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"FFT on 3 CPUs under threshold(4) (affinity scheduler)",
		"user time:", "system time:", "references:", "protocol:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestCaseInsensitiveAppNames(t *testing.T) {
	// -app names resolve case-insensitively both with and without -size.
	var out, errb strings.Builder
	if code := run([]string{"-app", "parmult", "-nproc", "2", "-workers", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ParMult on 2 CPUs") {
		t.Errorf("lowercase -app should resolve to ParMult:\n%s", out.String())
	}
}

func TestTraceOutWritesValidChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb strings.Builder
	code := run([]string{"-app", "FFT", "-size", "16", "-nproc", "3", "-trace-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "event trace") || !strings.Contains(out.String(), path) {
		t.Errorf("report should mention the trace file:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

func TestTraceOutRequiresSingleApp(t *testing.T) {
	for _, flag := range []string{"-traceout", "-trace-out"} {
		var out, errb strings.Builder
		code := run([]string{"-app", "FFT,ParMult", flag, filepath.Join(t.TempDir(), "x")}, &out, &errb)
		if code != 1 {
			t.Errorf("%s with two apps: exit code = %d, want 1", flag, code)
		}
		if !strings.Contains(errb.String(), "single -app") {
			t.Errorf("%s error should explain the single-app rule, got: %s", flag, errb.String())
		}
	}
}

func TestExperimentList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "pressuresweep") || !strings.Contains(out.String(), "table3") {
		t.Errorf("experiment list incomplete:\n%s", out.String())
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "bogusexp"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bogusexp") {
		t.Errorf("stderr should name the unknown experiment, got: %s", errb.String())
	}
}

func TestExperimentPressureSweep(t *testing.T) {
	var out, errb strings.Builder
	args := []string{"-exp", "pressuresweep", "-app", "FFT", "-nproc", "3",
		"-frames", "4,2", "-chaos-seed", "7", "-chaos-fail", "0.1"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Memory pressure") ||
		!strings.Contains(out.String(), "FFT") {
		t.Errorf("pressure table unexpected:\n%s", out.String())
	}
}

func TestExperimentDefaultAppIsWholeMix(t *testing.T) {
	// acesim's -app default (IMatMult) must not narrow an experiment that
	// sweeps every application unless the user actually passed -app.
	var out, errb strings.Builder
	if code := run([]string{"-exp", "pressuresweep", "-nproc", "3", "-frames", "8"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	for _, app := range []string{"Gfetch", "IMatMult", "FFT"} {
		if !strings.Contains(out.String(), app) {
			t.Errorf("app-less pressure sweep missing %s:\n%s", app, out.String())
		}
	}
}
