package main

import (
	"regexp"
	"strings"
	"testing"
)

// flagLine matches the "  -name" lines flag.PrintDefaults emits, which
// follow the hand-written synopsis after the "Flags:" marker.
var flagLine = regexp.MustCompile(`(?m)^  -([a-z0-9-]+)`)

// TestUsageMentionsEveryFlag keeps the -h synopsis honest: every flag
// the flag set registers must be named in the synopsis text, so adding
// a flag without documenting it fails here.
func TestUsageMentionsEveryFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	synopsis, defaults, ok := strings.Cut(errb.String(), "Flags:")
	if !ok {
		t.Fatalf("usage output lacks the Flags: marker:\n%s", errb.String())
	}
	matches := flagLine.FindAllStringSubmatch(defaults, -1)
	if len(matches) < 20 {
		t.Fatalf("parsed only %d flags from the defaults section:\n%s", len(matches), defaults)
	}
	for _, m := range matches {
		if !strings.Contains(synopsis, "-"+m[1]) {
			t.Errorf("usage synopsis does not mention -%s", m[1])
		}
	}
}
