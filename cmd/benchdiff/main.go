// Command benchdiff compares two tracked benchmark runs (BENCH_*.json,
// written by cmd/benchjson) and fails on hot-path regressions. It is the
// CI gate for the perf trajectory: time regressions beyond the tolerance
// fail the run, and any growth in allocs/op beyond the tolerance fails —
// in particular a benchmark that was allocation-free must stay
// allocation-free.
//
// Usage:
//
//	benchdiff [-tolerance 0.20] old.json new.json
//
// Benchmarks present in only one file are reported as warnings but do
// not fail the comparison (filters legitimately differ between full and
// reduced runs). Exit status: 0 when within tolerance, 1 on regression,
// 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"numasim/internal/benchfmt"
)

// report writes one comparison table and returns the regressions found.
func report(old, new *benchfmt.File, tol float64, w io.Writer) []string {
	oldBy := old.ByName()
	newBy := new.ByName()
	names := make([]string, 0, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		if _, ok := newBy[b.Name]; ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	var regressions []string
	fmt.Fprintf(w, "%-40s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		mark := ""
		if delta > tol {
			mark = "  << REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op regressed %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					name, delta*100, o.NsPerOp, n.NsPerOp, tol*100))
		}
		// Allocation counts are near-deterministic: allow the same
		// relative tolerance but never any allocs on a path that had
		// none.
		if n.AllocsPerOp > math.Ceil(o.AllocsPerOp*(1+tol)) {
			mark = "  << REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op regressed %.4g -> %.4g (tolerance %.0f%%)",
					name, o.AllocsPerOp, n.AllocsPerOp, tol*100))
		}
		fmt.Fprintf(w, "%-40s %14.4g %14.4g %+7.1f%%  %.4g -> %.4g%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, o.AllocsPerOp, n.AllocsPerOp, mark)
	}
	return regressions
}

func load(path string) (*benchfmt.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.Read(f)
}

// run is the testable entry point: it parses args (without the program
// name) and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tolerance", 0.20, "relative ns/op and allocs/op slack before a regression fails")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-tolerance 0.20] old.json new.json")
		return 2
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	new, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	oldBy, newBy := old.ByName(), new.ByName()
	common := 0
	for _, b := range old.Benchmarks {
		if _, ok := newBy[b.Name]; ok {
			common++
		} else {
			fmt.Fprintf(stderr, "benchdiff: warning: %s only in %s\n", b.Name, fs.Arg(0))
		}
	}
	for _, b := range new.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			fmt.Fprintf(stderr, "benchdiff: warning: %s only in %s\n", b.Name, fs.Arg(1))
		}
	}
	if common == 0 {
		fmt.Fprintln(stderr, "benchdiff: the two files share no benchmarks")
		return 2
	}
	regressions := report(old, new, *tol, stdout)
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(stderr, "  "+r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "OK: %d benchmarks within %.0f%% tolerance\n", common, *tol*100)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
