package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numasim/internal/benchfmt"
)

func writeFile(t *testing.T, name string, f *benchfmt.File) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	return path
}

func bench(name string, ns, allocs float64) benchfmt.Result {
	return benchfmt.Result{Name: name, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestWithinTolerance(t *testing.T) {
	old := writeFile(t, "old.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 100, 0), bench("BenchmarkB", 1000, 10),
	}})
	new := writeFile(t, "new.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 110, 0), bench("BenchmarkB", 900, 11),
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-tolerance", "0.20", old, new}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "OK: 2 benchmarks") {
		t.Errorf("missing OK line:\n%s", out.String())
	}
}

func TestTimeRegressionFails(t *testing.T) {
	old := writeFile(t, "old.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 100, 0),
	}})
	new := writeFile(t, "new.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 130, 0),
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-tolerance", "0.20", old, new}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on 30%% time regression, want 1", code)
	}
	if !strings.Contains(errb.String(), "ns/op regressed") {
		t.Errorf("missing regression report:\n%s", errb.String())
	}
}

func TestZeroAllocPathMustStayZero(t *testing.T) {
	old := writeFile(t, "old.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkHot", 100, 0),
	}})
	new := writeFile(t, "new.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkHot", 100, 1),
	}})
	var out, errb bytes.Buffer
	if code := run([]string{old, new}, &out, &errb); code != 1 {
		t.Fatalf("exit %d when a zero-alloc path starts allocating, want 1", code)
	}
	if !strings.Contains(errb.String(), "allocs/op regressed") {
		t.Errorf("missing allocs regression report:\n%s", errb.String())
	}
}

func TestDisjointNamesWarnButCompareCommon(t *testing.T) {
	old := writeFile(t, "old.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 100, 0), bench("BenchmarkOldOnly", 5, 0),
	}})
	new := writeFile(t, "new.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 100, 0), bench("BenchmarkNewOnly", 5, 0),
	}})
	var out, errb bytes.Buffer
	if code := run([]string{old, new}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (disjoint names are warnings)", code)
	}
	if !strings.Contains(errb.String(), "BenchmarkOldOnly") || !strings.Contains(errb.String(), "BenchmarkNewOnly") {
		t.Errorf("missing warnings:\n%s", errb.String())
	}
}

func TestNoCommonBenchmarksIsAnError(t *testing.T) {
	old := writeFile(t, "old.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkA", 100, 0),
	}})
	new := writeFile(t, "new.json", &benchfmt.File{Benchmarks: []benchfmt.Result{
		bench("BenchmarkB", 100, 0),
	}})
	var out, errb bytes.Buffer
	if code := run([]string{old, new}, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no shared benchmarks, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Errorf("exit %d with one arg, want 2", code)
	}
	if code := run([]string{"/does/not/exist.json", "/nor/this.json"}, &out, &errb); code != 2 {
		t.Errorf("exit %d on missing files, want 2", code)
	}
}
