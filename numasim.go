// Package numasim is a from-scratch reproduction of the system described
// in Bolosky, Fitzgerald and Scott, "Simple But Effective Techniques for
// NUMA Memory Management" (SOSP 1989): automatic page placement for
// two-level NUMA multiprocessors, implemented in the machine-dependent
// pmap layer of a Mach-like virtual memory system and evaluated on a
// simulated IBM ACE multiprocessor workstation.
//
// The package is a facade over the implementation packages:
//
//   - a deterministic virtual-time machine model of the ACE (processors,
//     local and global memories, measured reference latencies);
//   - a Mach-like VM system with the paper's pmap interface, including its
//     three NUMA extensions;
//   - the NUMA manager — the consistency protocol of the paper's Tables 1
//     and 2 — and pluggable NUMA policies (the move-threshold policy,
//     baselines, pragmas, pin reconsideration);
//   - a C-Threads-like runtime with an affinity scheduler;
//   - the paper's eight measured applications, an evaluation harness that
//     regenerates every table and figure, and a reference-trace facility
//     with false-sharing detection.
//
// Quick start:
//
//	sys, err := numasim.New() // default ACE, threshold policy, affinity scheduler
//	if err != nil {
//	    log.Fatal(err)
//	}
//	shared := sys.Runtime.Alloc("data", 4096)
//	err = sys.Runtime.Run(0, func(id int, c *numasim.Context) {
//	    c.Store32(shared+uint32(4*id), uint32(id))
//	})
//
// New takes functional options — WithConfig, WithPolicy, WithSched,
// WithLocalFrames (finite local memory), WithChaos (seeded fault
// injection), WithTraceSink (structured event tracing).
//
// See the examples directory and cmd/tables for complete programs.
package numasim

import (
	"numasim/internal/ace"
	"numasim/internal/cthreads"
	"numasim/internal/harness"
	"numasim/internal/metrics"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/trace"
	"numasim/internal/vm"
	"numasim/internal/workloads"
)

// Core machine and kernel types.
type (
	// Config describes an ACE machine instance.
	Config = ace.Config
	// CostModel gives the virtual-time cost of every charged operation.
	CostModel = ace.CostModel
	// Machine is an assembled ACE.
	Machine = ace.Machine
	// RefStats counts memory references by destination.
	RefStats = ace.RefStats
	// Kernel is the Mach-like VM system bound to one machine.
	Kernel = vm.Kernel
	// Task is an address space.
	Task = vm.Task
	// Context is a simulated thread's view of virtual memory.
	Context = vm.Context
	// Object is a Mach VM object (shareable memory container).
	Object = vm.Object
	// AccessError is the panic value of a simulated segmentation fault.
	AccessError = vm.AccessError
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Prot is a page protection.
	Prot = mmu.Prot
)

// NUMA management types.
type (
	// Page is the NUMA manager's record for one logical page.
	Page = numa.Page
	// PageState is a logical page's consistency state.
	PageState = numa.State
	// Location is a policy's placement answer.
	Location = numa.Location
	// Policy decides whether a page is placed in local or global memory.
	Policy = numa.Policy
	// Hint is an application placement pragma (§4.3).
	Hint = numa.Hint
	// NUMAStats counts protocol events.
	NUMAStats = numa.Stats
)

// Userland types.
type (
	// Runtime is a C-Threads program instance.
	Runtime = cthreads.Runtime
	// CThread is a forked C-thread.
	CThread = cthreads.Thread
	// SpinLock is a test-and-set lock in simulated shared memory.
	SpinLock = cthreads.SpinLock
	// Mutex is a blocking lock.
	Mutex = cthreads.Mutex
	// Cond is a condition variable.
	Cond = cthreads.Cond
	// Barrier makes n threads wait for each other.
	Barrier = cthreads.Barrier
	// WorkPile hands out unit-of-work indices.
	WorkPile = cthreads.WorkPile
	// SchedMode selects the scheduling discipline.
	SchedMode = sched.Mode
)

// Measurement types.
type (
	// Eval is the paper's three-run evaluation of one application.
	Eval = metrics.Eval
	// RunResult is the outcome of one instrumented run.
	RunResult = metrics.RunResult
	// Evaluator runs the paper's three-way comparison.
	Evaluator = metrics.Evaluator
	// Workload is one measured application.
	Workload = workloads.Workload
	// TraceCollector accumulates a reference trace.
	TraceCollector = trace.Collector
	// TraceSummary aggregates a reference trace.
	TraceSummary = trace.Summary
	// HarnessOptions configures the table/figure experiments.
	HarnessOptions = harness.Options
)

// Protections.
const (
	ProtNone      = mmu.ProtNone
	ProtRead      = mmu.ProtRead
	ProtWrite     = mmu.ProtWrite
	ProtReadWrite = mmu.ProtReadWrite
)

// Page states. RemotePlaced is the §4.4 extension state.
const (
	ReadOnly       = numa.ReadOnly
	LocalWritable  = numa.LocalWritable
	GlobalWritable = numa.GlobalWritable
	RemotePlaced   = numa.Remote
)

// Policy answers.
const (
	Local       = numa.Local
	Global      = numa.Global
	PlaceRemote = numa.PlaceRemote
)

// Placement pragmas (§4.3, §4.4).
const (
	HintNone         = numa.HintNone
	HintCacheable    = numa.HintCacheable
	HintNoncacheable = numa.HintNoncacheable
	HintRemote       = numa.HintRemote
)

// Scheduling disciplines (§4.7).
const (
	Affinity   = sched.Affinity
	NoAffinity = sched.NoAffinity
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultThreshold is the paper's default move limit (four).
const DefaultThreshold = policy.DefaultThreshold

// DefaultConfig returns a machine comparable to the paper's measurement
// configuration: 7 processors, 16 MB global, 8 MB local per processor.
func DefaultConfig() Config { return ace.DefaultConfig() }

// DefaultCostModel returns the paper's measured memory latencies and
// ROMP-plausible instruction costs.
func DefaultCostModel() CostModel { return ace.DefaultCostModel() }

// NewMachine builds a machine, validating the configuration.
func NewMachine(cfg Config) (*Machine, error) { return ace.NewMachine(cfg) }

// NewKernel builds a Mach-like kernel on machine with the given NUMA
// policy.
func NewKernel(m *Machine, pol Policy) *Kernel { return vm.NewKernel(m, pol) }

// NewRuntime builds a C-Threads runtime on kernel.
func NewRuntime(k *Kernel, mode SchedMode) *Runtime { return cthreads.New(k, mode) }

// NewBarrier creates a barrier for n threads.
func NewBarrier(n int) *Barrier { return cthreads.NewBarrier(n) }

// NewSpinLockAt places a lock word at an application-chosen address (the
// manual segregation tool of §4.2).
func NewSpinLockAt(va uint32) *SpinLock { return cthreads.NewSpinLockAt(va) }

// NewContext creates a memory context for a simulated thread (advanced
// use; Runtime.Run and Runtime.Fork create contexts for you).
func NewContext(k *Kernel, t *Task, th *SimThread, proc int) *Context {
	return vm.NewContext(k, t, th, proc)
}

// SimThread is a simulated thread of control.
type SimThread = sim.Thread

// System bundles a machine, kernel and runtime — the usual way to start.
type System struct {
	Machine *Machine
	Kernel  *Kernel
	Runtime *Runtime
}

// NewSystem builds a complete system: machine, kernel with the given
// placement policy, and a C-Threads runtime with the given scheduler.
//
// Deprecated: use New, which takes functional options and validates the
// configuration instead of panicking:
//
//	sys, err := numasim.New(numasim.WithConfig(cfg),
//	    numasim.WithPolicy(pol), numasim.WithSched(mode))
func NewSystem(cfg Config, pol Policy, mode SchedMode) *System {
	sys, err := New(WithConfig(cfg), WithPolicy(pol), WithSched(mode))
	if err != nil {
		panic(err)
	}
	return sys
}

// Policies.

// DefaultPolicy returns the paper's placement policy with its default
// threshold of four moves.
func DefaultPolicy() Policy { return policy.NewDefault() }

// ThresholdPolicy returns the paper's policy with a custom move limit.
func ThresholdPolicy(limit int) Policy { return policy.NewThreshold(limit) }

// NeverPinPolicy caches pages locally no matter how often they move.
func NeverPinPolicy() Policy { return policy.NeverPin() }

// AllGlobalPolicy places every writable page in global memory (the
// T_global baseline).
func AllGlobalPolicy() Policy { return policy.AllGlobal{} }

// AllLocalPolicy places every page in local memory (the T_local baseline).
func AllLocalPolicy() Policy { return policy.AllLocal{} }

// PragmaPolicy honours application placement pragmas, falling back to
// fallback (or the default policy when nil).
func PragmaPolicy(fallback Policy) Policy { return policy.NewPragma(fallback) }

// ReconsiderPolicy is the §5 extension that periodically reconsiders
// pinning decisions.
func ReconsiderPolicy(limit, period int) Policy { return policy.NewReconsider(limit, period) }

// FreezeDefrostPolicy is a PLATINUM-style time-based comparator policy:
// pages that moved recently freeze in global memory and defrost after a
// quiet period. Non-positive arguments select defaults.
func FreezeDefrostPolicy(freeze, defrost Time) Policy {
	return policy.NewFreezeDefrost(freeze, defrost)
}

// Workloads.

// AllWorkloads returns the paper's application mix at default (scaled)
// sizes, in Table 3 order.
func AllWorkloads() []Workload { return workloads.All() }

// WorkloadByName returns a named workload ("ParMult", ..., "PlyTrace", or
// "Primes2-untuned").
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Measurement.

// NewEvaluator returns an evaluator for the paper's measurement setup.
func NewEvaluator() *Evaluator { return metrics.NewEvaluator() }

// Evaluate runs the paper's three-run comparison (T_numa, T_global,
// T_local) for a workload; fresh must return a new instance per run.
func Evaluate(ev *Evaluator, fresh func() Workload) (Eval, error) {
	return ev.Evaluate(func() (metrics.Runner, error) { return fresh(), nil })
}

// EvaluateByName runs the three-run comparison for a named workload at its
// default size.
func EvaluateByName(ev *Evaluator, name string) (Eval, error) {
	return ev.Evaluate(func() (metrics.Runner, error) { return workloads.ByName(name) })
}

// NewTraceCollector creates a reference-trace collector for the given page
// shift; install its Hook as Kernel.RefTrace.
func NewTraceCollector(pageShift uint, trackWords bool) *TraceCollector {
	return trace.New(pageShift, trackWords)
}

// Experiments (re-exported from the harness).

// Table3 regenerates the paper's Table 3.
func Table3(opts HarnessOptions) ([]harness.Table3Row, error) { return harness.Table3(opts) }

// RenderTable3 renders Table 3 with the paper's numbers alongside.
func RenderTable3(rows []harness.Table3Row) string { return harness.RenderTable3(rows) }

// Table4 regenerates the paper's Table 4.
func Table4(opts HarnessOptions) ([]harness.Table4Row, error) { return harness.Table4(opts) }

// RenderTable4 renders Table 4 with the paper's numbers alongside.
func RenderTable4(rows []harness.Table4Row) string { return harness.RenderTable4(rows) }

// ProtocolTable derives the paper's Table 1 (write=false) or Table 2
// (write=true) from the implementation.
func ProtocolTable(write bool) (string, error) { return harness.ProtocolTable(write) }

// Figure1 renders the ACE memory architecture.
func Figure1(opts HarnessOptions) (string, error) { return harness.Figure1(opts) }

// Figure2 renders the pmap layer structure.
func Figure2() string { return harness.Figure2() }

// FalseSharingExperiment reproduces the §4.2 Primes2 tuning experiment.
func FalseSharingExperiment(opts HarnessOptions) (harness.FalseSharingResult, error) {
	return harness.FalseSharing(opts)
}

// ThresholdSweep measures a workload under varying move limits (limit < 0
// selects never-pin).
func ThresholdSweep(opts HarnessOptions, app string, limits []int) ([]harness.SweepRow, error) {
	return harness.ThresholdSweep(opts, app, limits)
}

// MixRun executes several applications concurrently on one machine, each
// in its own address space, under the paper's policy.
func MixRun(opts HarnessOptions, apps []string) (harness.MixResult, error) {
	return harness.MixRun(opts, apps)
}

// PolicyCompare races the paper's threshold policy against reconsidering
// policies on a phase-changing workload.
func PolicyCompare(opts HarnessOptions) ([]harness.PolicyRow, error) {
	return harness.PolicyCompare(opts)
}

// PressureSweep measures one application at shrinking per-processor
// local-frame budgets (empty frames: the default budgets), reporting
// slowdown against the unconstrained baseline.
func PressureSweep(opts HarnessOptions, app string, frames []int) ([]harness.PressureRow, error) {
	return harness.PressureSweep(opts, app, frames)
}

// RenderPressure renders a pressure sweep as a plain-text table.
func RenderPressure(rows []harness.PressureRow) string { return harness.RenderPressure(rows) }

// Experiment is one registered harness experiment.
type Experiment = harness.Experiment

// LookupExperiment finds a harness experiment by name, case-insensitively
// ("table3", "pressuresweep", ...).
func LookupExperiment(name string) (Experiment, bool) { return harness.Lookup(name) }

// ExperimentNames lists the registered experiments, sorted.
func ExperimentNames() []string { return harness.Names() }
