package numasim_test

import (
	"strings"
	"testing"

	"numasim"
)

// TestPublicAPIEndToEnd drives the whole system through the facade only,
// the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 3
	sys := numasim.NewSystem(cfg, numasim.DefaultPolicy(), numasim.Affinity)

	collector := numasim.NewTraceCollector(sys.Machine.PageShift(), true)
	sys.Kernel.RefTrace = collector.Hook()

	shared := sys.Runtime.Alloc("shared", 4096)
	lock := sys.Runtime.NewSpinLock()
	barrier := numasim.NewBarrier(3)

	err := sys.Runtime.Run(3, func(id int, c *numasim.Context) {
		barrier.Wait(c)
		for i := 0; i < 200; i++ {
			lock.Lock(c)
			v := c.Load32(shared)
			c.Store32(shared, v+1)
			lock.Unlock(c)
			c.Compute(50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	pg := sys.Runtime.Task().EntryAt(shared).Object().Page(0)
	if got := pg.GlobalFrame(); got == nil {
		t.Fatal("page has no global frame")
	}
	if v := pg.Authoritative().Load32(0); v != 600 {
		t.Errorf("counter = %d, want 600", v)
	}
	if pg.State() != numasim.GlobalWritable || !pg.Pinned() {
		t.Errorf("hot shared page state = %v pinned=%v, want pinned global", pg.State(), pg.Pinned())
	}
	if sys.Machine.Engine().TotalUserTime() <= 0 {
		t.Error("no user time")
	}
	sum := collector.Summarize()
	if sum.WritablyShared == 0 {
		t.Error("trace saw no writably-shared pages")
	}
}

func TestPublicPolicies(t *testing.T) {
	names := map[string]numasim.Policy{
		"threshold(4)":        numasim.DefaultPolicy(),
		"threshold(9)":        numasim.ThresholdPolicy(9),
		"never-pin":           numasim.NeverPinPolicy(),
		"all-global":          numasim.AllGlobalPolicy(),
		"all-local":           numasim.AllLocalPolicy(),
		"pragma+threshold(4)": numasim.PragmaPolicy(nil),
		"reconsider(2,8)":     numasim.ReconsiderPolicy(2, 8),
	}
	for want, pol := range names {
		if pol.Name() != want {
			t.Errorf("policy name %q, want %q", pol.Name(), want)
		}
	}
}

func TestPublicWorkloadsAndEvaluation(t *testing.T) {
	ws := numasim.AllWorkloads()
	if len(ws) != 8 {
		t.Fatalf("workloads = %d, want 8", len(ws))
	}
	if _, err := numasim.WorkloadByName("Primes2-untuned"); err != nil {
		t.Error(err)
	}
	ev := numasim.NewEvaluator()
	cfg := numasim.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 512
	cfg.LocalFrames = 256
	ev.Config = cfg
	e, err := numasim.Evaluate(ev, func() numasim.Workload {
		w, _ := numasim.WorkloadByName("ParMult")
		return w
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Gamma > 1.1 || e.Beta > 0.1 {
		t.Errorf("ParMult γ=%.2f β=%.2f through public API", e.Gamma, e.Beta)
	}
}

func TestPublicProtocolTables(t *testing.T) {
	for _, write := range []bool{false, true} {
		s, err := numasim.ProtocolTable(write)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "copy to local") {
			t.Errorf("table missing protocol action:\n%s", s)
		}
	}
	f1, err := numasim.Figure1(numasim.HarnessOptions{NProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "IPC bus") {
		t.Error("figure 1 wrong")
	}
	if !strings.Contains(numasim.Figure2(), "NUMA manager") {
		t.Error("figure 2 wrong")
	}
}

func TestPublicConstants(t *testing.T) {
	if numasim.DefaultThreshold != 4 {
		t.Error("paper default threshold is 4")
	}
	if !numasim.ProtReadWrite.CanWrite() || !numasim.ProtRead.CanRead() {
		t.Error("protections wrong")
	}
	if numasim.Second != 1000*numasim.Millisecond {
		t.Error("time units wrong")
	}
}
