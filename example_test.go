package numasim_test

import (
	"fmt"

	"numasim"
)

// The basic lifecycle: build a system, run a parallel program, inspect
// where automatic placement put the pages.
func ExampleNew() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg))
	if err != nil {
		panic(err)
	}

	private := sys.Runtime.Alloc("private", 4096)
	err = sys.Runtime.Run(2, func(id int, c *numasim.Context) {
		if id == 0 {
			for i := uint32(0); i < 8; i++ {
				c.Store32(private+i*4, i)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	pg := sys.Runtime.Task().EntryAt(private).Object().Page(0)
	fmt.Println("state:", pg.State(), "pinned:", pg.Pinned())
	// Output:
	// state: local-writable pinned: false
}

// Pages written from several processors use up their move budget and are
// pinned in global memory (§2.3.2).
func ExampleThresholdPolicy() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(numasim.ThresholdPolicy(2)))
	if err != nil {
		panic(err)
	}
	shared := sys.Runtime.Alloc("shared", 4096)
	err = sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		for i := 0; i < 4; i++ {
			c.MigrateTo(i % 2)
			c.Store32(shared, uint32(i))
		}
	})
	if err != nil {
		panic(err)
	}
	pg := sys.Runtime.Task().EntryAt(shared).Object().Page(0)
	fmt.Println("state:", pg.State(), "moves:", pg.Moves())
	// Output:
	// state: global-writable moves: 2
}

// A custom policy is any implementation of the one-function cache_policy
// interface (§2.3.2).
func ExamplePolicy() {
	alwaysGlobal := numasim.AllGlobalPolicy()
	fmt.Println(alwaysGlobal.Name())
	// Output:
	// all-global
}

// The placement pragmas of §4.3: a region known to be writably shared can
// be pinned up front.
func ExampleTask_SetHint() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(numasim.PragmaPolicy(nil)))
	if err != nil {
		panic(err)
	}
	va := sys.Runtime.Alloc("known-shared", 4096)
	sys.Runtime.Task().SetHint(va, numasim.HintNoncacheable)
	err = sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		c.Store32(va, 1)
	})
	if err != nil {
		panic(err)
	}
	pg := sys.Runtime.Task().EntryAt(va).Object().Page(0)
	fmt.Println("state:", pg.State())
	// Output:
	// state: global-writable
}

// Reference traces classify every page's sharing behaviour (§4.2, §5).
func ExampleTraceCollector() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg))
	if err != nil {
		panic(err)
	}
	collector := numasim.NewTraceCollector(sys.Machine.PageShift(), true)
	sys.Kernel.RefTrace = collector.Hook()

	va := sys.Runtime.Alloc("data", 4096)
	err = sys.Runtime.Run(2, func(id int, c *numasim.Context) {
		c.Store32(va+uint32(4*id), uint32(id)) // two CPUs write distinct words
	})
	if err != nil {
		panic(err)
	}
	for _, p := range collector.Pages() {
		if p.Class.String() == "writably-shared" {
			fmt.Println("falsely shared:", p.FalselyShared)
		}
	}
	// Output:
	// falsely shared: true
}

// Bounding per-processor local memory (the tentpole of the pressure
// experiments) puts the reclaimer to work: with only two local frames,
// writing four private pages forces two cold ones back to global memory.
func ExampleWithLocalFrames() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithLocalFrames(2))
	if err != nil {
		panic(err)
	}
	pages := sys.Runtime.Alloc("data", 4*4096)
	err = sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		for p := uint32(0); p < 4; p++ {
			c.Store32(pages+p*4096, p)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("evictions:", sys.Kernel.NUMA().Stats().Evictions)
	// Output:
	// evictions: 2
}
