// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the simulator's hot paths. Each Table 3/4 benchmark
// performs the paper's full instrumented-run protocol (T_numa, T_global,
// T_local) at reduced problem sizes and reports the derived model
// parameters as benchmark metrics, so `go test -bench .` both regenerates
// the results and tracks the harness's own cost.
package numasim_test

import (
	"strconv"
	"testing"

	"numasim"
	"numasim/internal/ace"
	"numasim/internal/harness"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// benchOpts uses the reduced problem sizes so a full -bench run stays
// under a minute, and pins Parallelism to 1 so per-iteration costs stay
// comparable across machines (BenchmarkTable3Parallel measures the
// parallel harness separately). Note that Table 4's overhead *ratios* are
// size-dependent (fixed page-movement transients over shrunken compute);
// the values the paper should be compared against come from
// `go run ./cmd/tables` at default sizes (see EXPERIMENTS.md).
var benchOpts = numasim.HarnessOptions{NProc: 7, Small: true, Parallelism: 1}

// benchEval evaluates one application per iteration and reports α, β, γ.
func benchEval(b *testing.B, app string) {
	b.Helper()
	var last harness.Table3Row
	for i := 0; i < b.N; i++ {
		opts := benchOpts
		ev := numasim.NewEvaluator()
		cfg := numasim.DefaultConfig()
		cfg.NProc = opts.NProc
		ev.Config = cfg
		rows, err := harness.Table3Single(opts, app)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.ReportMetric(last.Eval.Alpha, "alpha")
	b.ReportMetric(last.Eval.Beta, "beta")
	b.ReportMetric(last.Eval.Gamma, "gamma")
}

// BenchmarkTable3 regenerates each row of the paper's Table 3 (E5).
func BenchmarkTable3(b *testing.B) {
	for _, app := range harness.Table3Apps {
		app := app
		b.Run(app, func(b *testing.B) { benchEval(b, app) })
	}
}

// BenchmarkTable4 regenerates each row of the paper's Table 4 (E6),
// reporting the measured overhead ratio.
func BenchmarkTable4(b *testing.B) {
	for _, app := range harness.Table4Apps {
		app := app
		b.Run(app, func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				row, err := harness.Table4Single(benchOpts, app)
				if err != nil {
					b.Fatal(err)
				}
				pct = row.DeltaPct
			}
			b.ReportMetric(pct, "dS/T%")
		})
	}
}

// BenchmarkTable1 and BenchmarkTable2 derive the protocol action matrices
// from the implementation (E3, E4).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := numasim.ProtocolTable(false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := numasim.ProtocolTable(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 and BenchmarkFigure2 regenerate the architecture
// diagrams (E1, E2).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s, err := numasim.Figure1(benchOpts); err != nil || s == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if numasim.Figure2() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFalseSharing runs the §4.2 Primes2 experiment (E8).
func BenchmarkFalseSharing(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := harness.FalseSharing(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.Tuned.Alpha - r.Untuned.Alpha
	}
	b.ReportMetric(gap, "alpha-gain")
}

// BenchmarkAblateThreshold sweeps the pin threshold (E9), the design
// parameter §2.3.2 exposes.
func BenchmarkAblateThreshold(b *testing.B) {
	for _, lim := range []int{0, 4, -1} {
		lim := lim
		name := "never-pin"
		if lim >= 0 {
			name = strconv.Itoa(lim)
		}
		b.Run("limit-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.ThresholdSweep(benchOpts, "Primes3", []int{lim}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblateAffinity compares the affinity scheduler with the
// original single-queue behaviour (E11).
func BenchmarkAblateAffinity(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := harness.AffinityCompare(benchOpts, "Primes1")
		if err != nil {
			b.Fatal(err)
		}
		gap = r.AffLocal - r.HopLocal
	}
	b.ReportMetric(gap, "local-gain")
}

// ---------------------------------------------------------------------
// Simulator hot-path microbenchmarks.
// ---------------------------------------------------------------------

// BenchmarkLocalAccess measures the simulator's cost for the common case:
// a load that hits a local replica through the software TLB.
func BenchmarkLocalAccess(b *testing.B) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 1
	sys := numasim.NewSystem(cfg, numasim.AllLocalPolicy(), numasim.Affinity)
	va := sys.Runtime.Alloc("data", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	err := sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		c.Store32(va, 1)
		for i := 0; i < b.N; i++ {
			c.Load32(va)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPickManyThreads measures the engine's scheduling decision — the
// pick of the next thread to resume — as the ready queue grows. The
// indexed min-heap keeps the cost logarithmic where the original linear
// scan grew with the thread count.
func BenchmarkPickManyThreads(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		n := n
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			e := sim.NewEngine()
			iters := b.N/n + 1
			for i := 0; i < n; i++ {
				e.Spawn("t", 0, func(th *sim.Thread) {
					for j := 0; j < iters; j++ {
						th.Advance(sim.Microsecond)
						th.Yield() // re-enqueue; every resume is one pick
					}
				})
			}
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTable3Parallel regenerates the full small Table 3 through the
// worker pool at the default parallelism (one simulation per host CPU).
// Compare against BenchmarkTable3's per-row cost to see the wall-clock
// effect of the pool on this machine.
func BenchmarkTable3Parallel(b *testing.B) {
	opts := benchOpts
	opts.Parallelism = 0 // default: runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageMigration measures a full ownership transfer: write fault,
// sync, flush, copy.
func BenchmarkPageMigration(b *testing.B) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys := numasim.NewSystem(cfg, numasim.NeverPinPolicy(), numasim.Affinity)
	va := sys.Runtime.Alloc("pingpong", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	err := sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		for i := 0; i < b.N; i++ {
			c.MigrateTo(i % 2)
			c.Store32(va, uint32(i))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFaultPath measures a full page fault: the mappings for a
// materialized page are torn out (unmap plus TLB shootdown on every
// space), then one load refaults it through the kernel, the NUMA
// manager's placement decision and the pmap enter path.
func BenchmarkFaultPath(b *testing.B) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 1
	sys := numasim.NewSystem(cfg, numasim.AllLocalPolicy(), numasim.Affinity)
	va := sys.Runtime.Alloc("fault", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	err := sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		c.Store32(va, 1) // materialize the page
		pm := c.Kernel().Pmap()
		for i := 0; i < b.N; i++ {
			if pg := c.Task().Pmap().Resident(va); pg != nil {
				pm.RemoveAll(c.Thread(), pg)
			}
			c.Load32(va)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPolicyCompare races the placement policies on the
// phase-changing probe.
func BenchmarkPolicyCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.PolicyCompare(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead measures what the simtrace bus costs the Table 3
// hot path. The "off" case is the zero-cost-when-off contract: with no
// sink attached every emission site reduces to one nil check, so it must
// stay within noise (<1%) of the pre-simtrace baseline. The "counting"
// case prices the cheapest real sink (one atomic add per event).
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, sink simtrace.Sink) {
		b.Helper()
		b.ReportAllocs()
		opts := benchOpts
		opts.TraceSink = sink
		for i := 0; i < b.N; i++ {
			if _, err := harness.Table3Single(opts, "FFT"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("counting", func(b *testing.B) {
		counts := &simtrace.CountingSink{}
		run(b, counts)
		b.ReportMetric(float64(counts.Total())/float64(b.N), "events/op")
	})
}

// BenchmarkAuditOverhead prices the online protocol auditor on the
// Table 3 hot path. "off" is the baseline; "sampled" (stride 1024) is
// the mode meant for long sweeps and must stay within 5% of it; "full"
// (stride 1, every protocol action re-validated) is the fuzz/debug
// setting and may cost what it costs.
func BenchmarkAuditOverhead(b *testing.B) {
	run := func(b *testing.B, stride int) {
		b.Helper()
		opts := benchOpts
		opts.Audit = stride
		for i := 0; i < b.N; i++ {
			if _, err := harness.Table3Single(opts, "FFT"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("sampled", func(b *testing.B) { run(b, 1024) })
	b.Run("full", func(b *testing.B) { run(b, 1) })
}

// BenchmarkEvacuation prices one full degraded-mode cycle on the
// 4-socket machine: place local writable copies on a node, fail it
// (drain every copy onto the survivors through the bounded work queue,
// quarantine the pool), then revive it cold. The per-op cost is what a
// failure schedule charges the host per node event, on top of the
// virtual time it bills the simulation.
func BenchmarkEvacuation(b *testing.B) {
	spec, err := topology.FourSocket(4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ace.DefaultConfig()
	cfg.NProc = 4
	cfg.GlobalFrames = 128
	cfg.LocalFrames = 32
	cfg.Topo = spec
	m := ace.MustMachine(cfg)
	n := numa.NewManager(m, policy.NewDefault())

	const npages = 16
	pages := make([]*numa.Page, npages)
	b.ReportAllocs()
	m.Engine().Spawn("bench", 0, func(th *sim.Thread) {
		for i := range pages {
			pg, err := n.NewPage()
			if err != nil {
				b.Fatal(err)
			}
			pages[i] = pg
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, pg := range pages {
				// Repeated writes pass the pin threshold, so the copies are
				// local-writable on node 1 when the failure hits.
				for j := 0; j < 3; j++ {
					n.Access(th, pg, 1, true, mmu.ProtReadWrite)
				}
			}
			n.FailNode(th, 1)
			n.ReviveNode(th, 1)
		}
	})
	if err := m.Engine().Run(); err != nil {
		b.Fatal(err)
	}
	if n.Stats().Evacuations == 0 {
		b.Fatal("benchmark never evacuated a page")
	}
}

// BenchmarkMix runs two applications concurrently (the application-mix
// experiment).
func BenchmarkMix(b *testing.B) {
	var local float64
	for i := 0; i < b.N; i++ {
		r, err := harness.MixRun(benchOpts, []string{"ParMult", "Primes1"})
		if err != nil {
			b.Fatal(err)
		}
		local = r.LocalFrac
	}
	b.ReportMetric(local, "local-frac")
}
