module numasim

go 1.22
