package numasim_test

import (
	"sort"
	"strings"
	"testing"

	"numasim"
)

// TestFacadeSurface exercises the remaining public facade entry points the
// way a downstream program would.
func TestFacadeSurface(t *testing.T) {
	cm := numasim.DefaultCostModel()
	if cm.LocalFetch != 650*numasim.Nanosecond {
		t.Errorf("LocalFetch = %v", cm.LocalFetch)
	}
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	m, err := numasim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := numasim.NewKernel(m, numasim.DefaultPolicy())
	rt := numasim.NewRuntime(k, numasim.Affinity)
	task := rt.Task()
	va := rt.Alloc("x", 4096)
	m.Engine().Spawn("t", 0, func(th *numasim.SimThread) {
		c := numasim.NewContext(k, task, th, 0)
		c.Store32(va, 5)
		if c.Load32(va) != 5 {
			t.Error("round trip failed")
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeNewOptions exercises the full option set of numasim.New the
// way a downstream program would, including chaos injection and a trace
// sink.
func TestFacadeNewOptions(t *testing.T) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 64
	var sink numasim.TraceListSink
	sys, err := numasim.New(
		numasim.WithConfig(cfg),
		numasim.WithPolicy(numasim.ThresholdPolicy(2)),
		numasim.WithSched(numasim.Affinity),
		numasim.WithLocalFrames(2),
		numasim.WithChaos(numasim.ChaosConfig{Seed: 7}.WithDefaults()),
		numasim.WithTraceSink(&sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	region := sys.Runtime.Alloc("data", 6*4096)
	err = sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		for p := uint32(0); p < 6; p++ {
			c.Store32(region+p*4096, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := sys.Kernel.NUMA().Stats()
	if ns.Evictions == 0 {
		t.Error("two local frames and six pages should force evictions")
	}
	if len(sink.Events()) == 0 {
		t.Error("trace sink saw no events")
	}
}

// TestFacadeNewValidates checks that New reports configuration mistakes
// as errors instead of panicking mid-build.
func TestFacadeNewValidates(t *testing.T) {
	if _, err := numasim.New(numasim.WithConfig(numasim.Config{})); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := numasim.New(numasim.WithLocalFrames(1)); err == nil {
		t.Error("local frames below the working minimum accepted")
	}
	if _, err := numasim.New(numasim.WithChaos(numasim.ChaosConfig{FailProb: 2})); err == nil {
		t.Error("out-of-range chaos probability accepted")
	}
}

// TestFacadeExperimentRegistry checks the registry re-exports: lookup is
// case-insensitive and the names list is sorted and complete.
func TestFacadeExperimentRegistry(t *testing.T) {
	e, ok := numasim.LookupExperiment("PressureSweep")
	if !ok {
		t.Fatal("pressuresweep not registered")
	}
	if e.Name() != "pressuresweep" {
		t.Errorf("Name() = %q", e.Name())
	}
	names := numasim.ExperimentNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("names unsorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "table3" {
			found = true
		}
	}
	if !found {
		t.Errorf("table3 missing from %v", names)
	}
}

func TestFacadeExperiments(t *testing.T) {
	opts := numasim.HarnessOptions{NProc: 3, Small: true}

	rows3, err := numasim.Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := numasim.RenderTable3(rows3); !strings.Contains(out, "Gfetch") {
		t.Error("table 3 incomplete")
	}
	rows4, err := numasim.Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := numasim.RenderTable4(rows4); !strings.Contains(out, "Primes3") {
		t.Error("table 4 incomplete")
	}
	fs, err := numasim.FalseSharingExperiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tuned.Alpha <= fs.Untuned.Alpha {
		t.Error("false-sharing experiment inverted")
	}
	sweep, err := numasim.ThresholdSweep(opts, "Gfetch", []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Errorf("sweep rows = %d", len(sweep))
	}
	mix, err := numasim.MixRun(opts, []string{"ParMult", "Primes1"})
	if err != nil {
		t.Fatal(err)
	}
	if mix.UserSec <= 0 {
		t.Error("mix did no work")
	}
	press, err := numasim.PressureSweep(opts, "Gfetch", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(press) != 2 {
		t.Errorf("pressure rows = %d", len(press))
	}
	if out := numasim.RenderPressure(press); !strings.Contains(out, "unbounded") {
		t.Error("pressure table missing baseline row")
	}
}

func TestFacadeCopyOnWriteAndRemote(t *testing.T) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys := numasim.NewSystem(cfg, numasim.PragmaPolicy(nil), numasim.Affinity)
	src := sys.Runtime.Alloc("src", 4096)
	rem := sys.Runtime.Alloc("rem", 4096)
	sys.Runtime.Task().SetHome(rem, 1)
	err := sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		c.Store32(src, 10)
		dst := c.Task().CopyRegion(c.Thread(), "copy", src)
		c.Store32(dst, 20)
		if c.Load32(src) != 10 || c.Load32(dst) != 20 {
			t.Error("COW through facade failed")
		}
		c.Store32(rem, 30)
		pg := c.Task().EntryAt(rem).Object().Page(0)
		if pg.State() != numasim.RemotePlaced || pg.Home() != 1 {
			t.Errorf("remote placement through facade: state=%v home=%d", pg.State(), pg.Home())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateByNameRejectsUnknown(t *testing.T) {
	if _, err := numasim.EvaluateByName(numasim.NewEvaluator(), "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
