package numasim_test

import (
	"strings"
	"testing"

	"numasim"
)

// TestFacadeSurface exercises the remaining public facade entry points the
// way a downstream program would.
func TestFacadeSurface(t *testing.T) {
	cm := numasim.DefaultCostModel()
	if cm.LocalFetch != 650*numasim.Nanosecond {
		t.Errorf("LocalFetch = %v", cm.LocalFetch)
	}
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	m := numasim.NewMachine(cfg)
	k := numasim.NewKernel(m, numasim.DefaultPolicy())
	rt := numasim.NewRuntime(k, numasim.Affinity)
	task := rt.Task()
	va := rt.Alloc("x", 4096)
	m.Engine().Spawn("t", 0, func(th *numasim.SimThread) {
		c := numasim.NewContext(k, task, th, 0)
		c.Store32(va, 5)
		if c.Load32(va) != 5 {
			t.Error("round trip failed")
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	opts := numasim.HarnessOptions{NProc: 3, Small: true}

	rows3, err := numasim.Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := numasim.RenderTable3(rows3); !strings.Contains(out, "Gfetch") {
		t.Error("table 3 incomplete")
	}
	rows4, err := numasim.Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := numasim.RenderTable4(rows4); !strings.Contains(out, "Primes3") {
		t.Error("table 4 incomplete")
	}
	fs, err := numasim.FalseSharingExperiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Tuned.Alpha <= fs.Untuned.Alpha {
		t.Error("false-sharing experiment inverted")
	}
	sweep, err := numasim.ThresholdSweep(opts, "Gfetch", []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Errorf("sweep rows = %d", len(sweep))
	}
	mix, err := numasim.MixRun(opts, []string{"ParMult", "Primes1"})
	if err != nil {
		t.Fatal(err)
	}
	if mix.UserSec <= 0 {
		t.Error("mix did no work")
	}
}

func TestFacadeCopyOnWriteAndRemote(t *testing.T) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys := numasim.NewSystem(cfg, numasim.PragmaPolicy(nil), numasim.Affinity)
	src := sys.Runtime.Alloc("src", 4096)
	rem := sys.Runtime.Alloc("rem", 4096)
	sys.Runtime.Task().SetHome(rem, 1)
	err := sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		c.Store32(src, 10)
		dst := c.Task().CopyRegion(c.Thread(), "copy", src)
		c.Store32(dst, 20)
		if c.Load32(src) != 10 || c.Load32(dst) != 20 {
			t.Error("COW through facade failed")
		}
		c.Store32(rem, 30)
		pg := c.Task().EntryAt(rem).Object().Page(0)
		if pg.State() != numasim.RemotePlaced || pg.Home() != 1 {
			t.Errorf("remote placement through facade: state=%v home=%d", pg.State(), pg.Home())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateByNameRejectsUnknown(t *testing.T) {
	if _, err := numasim.EvaluateByName(numasim.NewEvaluator(), "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
