package numasim

import (
	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/cthreads"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/simtrace"
	"numasim/internal/vm"
)

// ChaosConfig parameterizes the seeded fault-injection layer: transient
// local-allocation failures and delayed page moves, drawn from a PRNG
// advanced in virtual time so runs stay deterministic. The zero value
// injects nothing.
type ChaosConfig = chaos.Config

// TraceSink receives structured simulation events (see the simtrace
// package); attach one with WithTraceSink to record or count events.
type TraceSink = simtrace.Sink

// TraceListSink is a simple sink that collects events in order.
type TraceListSink = simtrace.ListSink

// Option configures New.
type Option func(*sysOptions)

// sysOptions accumulates the choices New assembles a System from.
type sysOptions struct {
	cfg   Config
	pol   Policy
	mode  SchedMode
	chaos ChaosConfig
	sink  TraceSink
	audit int
}

// WithConfig replaces the whole machine configuration (default:
// DefaultConfig). Compose with WithLocalFrames, which applies after it.
func WithConfig(cfg Config) Option {
	return func(o *sysOptions) { o.cfg = cfg }
}

// WithPolicy selects the NUMA placement policy (default: the paper's
// threshold policy with its default move limit).
func WithPolicy(pol Policy) Option {
	return func(o *sysOptions) { o.pol = pol }
}

// WithSched selects the scheduling discipline (default: Affinity).
func WithSched(mode SchedMode) Option {
	return func(o *sysOptions) { o.mode = mode }
}

// WithLocalFrames bounds each processor's local memory to n page frames.
// The default is effectively unbounded (8 MB per processor); small values
// put the NUMA manager's reclaimer and global-fallback path to work.
func WithLocalFrames(n int) Option {
	return func(o *sysOptions) { o.cfg.LocalFrames = n }
}

// WithChaos enables seeded fault injection. A fresh injector is built
// from cc for this system alone, so two systems with the same seed see
// the same fault schedule.
func WithChaos(cc ChaosConfig) Option {
	return func(o *sysOptions) { o.chaos = cc }
}

// WithTraceSink attaches a structured-event sink to the machine before
// anything runs.
func WithTraceSink(s TraceSink) Option {
	return func(o *sysOptions) { o.sink = s }
}

// WithAudit turns on the NUMA manager's online protocol auditor at the
// given sampling stride: 1 re-validates the directory invariants after
// every protocol action (what the tests use), larger strides sample for
// near-free checking on long runs, 0 leaves auditing off. A violation
// surfaces from Machine.Engine().Run() as an error wrapping a typed
// *ProtocolViolation that carries the page, its state, and the recent
// trace events.
func WithAudit(stride int) Option {
	return func(o *sysOptions) { o.audit = stride }
}

// ProtocolViolation is a broken NUMA-protocol invariant detected by the
// online auditor or the protocol itself; recover it from a run error with
// errors.As.
type ProtocolViolation = numa.ProtocolViolationError

// New builds a complete system — machine, kernel, C-Threads runtime —
// from functional options, validating the configuration instead of
// panicking:
//
//	sys, err := numasim.New(
//	    numasim.WithPolicy(numasim.ThresholdPolicy(2)),
//	    numasim.WithLocalFrames(64),
//	)
//
// With no options it is the paper's measurement setup: the default ACE,
// the default threshold policy, the affinity scheduler.
func New(opts ...Option) (*System, error) {
	o := sysOptions{cfg: DefaultConfig(), mode: Affinity}
	for _, opt := range opts {
		opt(&o)
	}
	if o.pol == nil {
		o.pol = policy.NewDefault()
	}
	if err := o.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := o.chaos.Validate(); err != nil {
		return nil, err
	}
	m, err := ace.NewMachine(o.cfg)
	if err != nil {
		return nil, err
	}
	// Auditing keeps a forensic ring of recent events so violations carry
	// context; a user sink keeps receiving everything through a tee.
	var ring *simtrace.RingSink
	sink := o.sink
	if o.audit > 0 {
		ring = simtrace.NewRingSink(256)
		if sink != nil {
			sink = simtrace.Tee(sink, ring)
		} else {
			sink = ring
		}
	}
	if sink != nil {
		m.AttachSink(sink)
	}
	k := vm.NewKernel(m, o.pol)
	if o.chaos.Enabled() {
		k.NUMA().SetChaos(chaos.New(o.chaos))
	}
	if o.audit > 0 {
		k.NUMA().EnableAudit(o.audit, ring)
	}
	return &System{Machine: m, Kernel: k, Runtime: cthreads.New(k, o.mode)}, nil
}
