# Build, verify and benchmark the numasim reproduction.
#
#   make check   - build everything, vet, and run the full test suite
#                  under the race detector (the parallel harness runs
#                  many simulations concurrently; -race guards it)
#   make bench   - run the benchmark suite (tables, ablations, and the
#                  simulator hot-path microbenchmarks)
#   make tables  - regenerate the paper's tables and figures

GO ?= go

.PHONY: check build vet test bench tables

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

tables:
	$(GO) run ./cmd/tables
