# Build, verify and benchmark the numasim reproduction.
#
#   make check    - build everything, vet, lint (numalint), run the
#                   full test suite under the race detector (the parallel
#                   harness runs many simulations concurrently; -race
#                   guards it), then the audit and pressure drills
#   make audit    - run the protocol-fuzz suite with full online
#                   auditing (every protocol action re-validates the
#                   directory invariants; violations die with forensics)
#   make lint     - run the numalint analyzer suite (determinism,
#                   maporder, statemachine, units, violation) via
#                   go vet -vettool
#   make numalint - build the numalint binary and print its path
#   make bench    - run the benchmark suite (tables, ablations, the
#                   simulator hot-path microbenchmarks, and the simtrace
#                   overhead check: BenchmarkTraceOverhead/off must stay
#                   within noise of earlier runs)
#   make tables   - regenerate the paper's tables and figures
#   make pressure - smoke-run the memory-pressure sweep with seeded fault
#                   injection (small sizes; exercises reclaim, fallback
#                   and retry end to end)

GO ?= go
NUMALINT := bin/numalint

.PHONY: check build vet lint numalint test bench tables pressure audit

check: build vet lint test audit pressure

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# numalint builds the analyzer binary and prints its absolute path, so it
# composes with go vet: go vet -vettool=$$(make -s numalint) ./...
numalint:
	@$(GO) build -o $(NUMALINT) ./cmd/numalint
	@echo $(CURDIR)/$(NUMALINT)

lint:
	$(GO) build -o $(NUMALINT) ./cmd/numalint
	$(GO) vet -vettool=$(CURDIR)/$(NUMALINT) ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

tables:
	$(GO) run ./cmd/tables

pressure:
	$(GO) run ./cmd/tables -small -nproc 3 -exp pressuresweep -app FFT \
		-frames 4,2 -chaos-seed 42 -chaos-fail 0.05 -chaos-delay 0.10

# audit replays the protocol-fuzz scripts (the full seed set, including
# the pressure variant) with the online auditor at stride 1: the
# directory invariants are re-validated after every protocol action, and
# any violation dies with the page, its state and the event-ring trace.
audit:
	$(GO) test -run 'TestProtocolFuzz' -count=1 ./internal/numa/
