# Build, verify and benchmark the numasim reproduction.
#
#   make check    - build everything, vet, lint (numalint), run the
#                   full test suite under the race detector (the parallel
#                   harness runs many simulations concurrently; -race
#                   guards it), then the audit and pressure drills
#   make audit    - run the protocol-fuzz suite with full online
#                   auditing (every protocol action re-validates the
#                   directory invariants; violations die with forensics)
#   make lint     - run the numalint analyzer suite (determinism,
#                   maporder, statemachine, units, violation) via
#                   go vet -vettool
#   make numalint - build the numalint binary and print its path
#   make bench    - run the benchmark suite (tables, ablations, the
#                   simulator hot-path microbenchmarks, and the simtrace
#                   overhead check: BenchmarkTraceOverhead/off must stay
#                   within noise of earlier runs). BENCHFILTER narrows
#                   the set (a -bench regexp) and BENCHTIME overrides
#                   -benchtime: make bench BENCHFILTER=FaultPath BENCHTIME=10x
#   make bench-json - run the benchmarks and record the run as
#                   BENCH_<date>.json (the tracked perf trajectory;
#                   compare two runs with cmd/benchdiff)
#   make bench-ci - the CI perf gate: re-measure the reduced hot-path
#                   set and fail if any benchmark regressed more than
#                   BENCHDIFF_TOL (default 20%) against the committed
#                   BENCH_baseline.json
#   make tables   - regenerate the paper's tables and figures
#   make pressure - smoke-run the memory-pressure sweep with seeded fault
#                   injection (small sizes; exercises reclaim, fallback
#                   and retry end to end)
#   make topo     - the topology gate: ACE byte-identity goldens through
#                   the generalized path, the multi-node protocol fuzz,
#                   and the link-contention property tests, under -race
#   make tournament - the policy-zoo gate: run the ranked tournament CSV
#                   at -parallel 1 and -parallel 8 and require the bytes
#                   to match, plus the capability fuzz and the adaptive
#                   acceptance test
#   make avail    - the degraded-mode gate: the availability sweep
#                   (every app through node/link failure schedules) must
#                   be byte-identical at any -parallel, and the
#                   failure-schedule fuzz, the evacuation property tests
#                   and the rerouting unit tests must hold under -race

GO ?= go
NUMALINT := bin/numalint

# Benchmark knobs: BENCHFILTER is the -bench regexp, BENCHTIME the
# -benchtime argument (a duration like 2s or a count like 100x).
BENCHFILTER ?= .
BENCHTIME ?= 1s
BENCHDATE := $(shell date +%Y-%m-%d)

# The reduced hot-path set the CI perf gate re-measures. Time-based
# -benchtime keeps ns/op out of one-shot noise on the nanosecond-scale
# paths while bounding the gate's wall-clock on the millisecond-scale
# ones; allocs/op is exact at any iteration count.
BENCH_CI_FILTER := 'LocalAccess$$|PageMigration$$|FaultPath$$|PickManyThreads|TraceOverhead'
BENCH_CI_TIME := 300ms
BENCHDIFF_TOL ?= 0.20

.PHONY: check build vet lint numalint test bench bench-json bench-ci tables pressure audit topo tournament avail

check: build vet lint test audit pressure topo tournament avail

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# numalint builds the analyzer binary and prints its absolute path, so it
# composes with go vet: go vet -vettool=$$(make -s numalint) ./...
numalint:
	@$(GO) build -o $(NUMALINT) ./cmd/numalint
	@echo $(CURDIR)/$(NUMALINT)

lint:
	$(GO) build -o $(NUMALINT) ./cmd/numalint
	$(GO) vet -vettool=$(CURDIR)/$(NUMALINT) ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench '$(BENCHFILTER)' -benchtime $(BENCHTIME) -benchmem -run '^$$' .

# bench-json records the run in the tracked JSON form. Diff two runs:
#   go run ./cmd/benchdiff -tolerance 0.20 BENCH_old.json BENCH_new.json
bench-json:
	$(GO) test -bench '$(BENCHFILTER)' -benchtime $(BENCHTIME) -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

# bench-ci is the perf gate: re-measure the reduced hot-path set and
# compare against the committed baseline. Exit 1 on any >$(BENCHDIFF_TOL)
# ns/op or allocs/op regression (a zero-alloc path must stay zero).
bench-ci:
	$(GO) test -bench $(BENCH_CI_FILTER) -benchtime $(BENCH_CI_TIME) -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_ci.json
	$(GO) run ./cmd/benchdiff -tolerance $(BENCHDIFF_TOL) BENCH_baseline.json /tmp/bench_ci.json

tables:
	$(GO) run ./cmd/tables

pressure:
	$(GO) run ./cmd/tables -small -nproc 3 -exp pressuresweep -app FFT \
		-frames 4,2 -chaos-seed 42 -chaos-fail 0.05 -chaos-delay 0.10

# audit replays the protocol-fuzz scripts (the full seed set, including
# the pressure variant) with the online auditor at stride 1: the
# directory invariants are re-validated after every protocol action, and
# any violation dies with the page, its state and the event-ring trace.
audit:
	$(GO) test -run 'TestProtocolFuzz' -count=1 ./internal/numa/

# topo is the topology gate: the ACE goldens must stay byte-identical
# through the generalized topology path, the protocol fuzz must hold on
# random multi-node machines, and the link model's conservation,
# monotonicity and determinism properties must pass — all under -race.
topo:
	$(GO) test -race -count=1 -run 'TestTable3GoldenACE|TestFigure1Golden|TestTable3ACEExplicitTopology|TestTopologyParallelDeterminism' ./internal/harness/
	$(GO) test -race -count=1 -run 'TestProtocolFuzzTopology' ./internal/numa/
	$(GO) test -race -count=1 ./internal/topology/

# tournament is the policy-zoo gate: the ranked grid must be
# byte-identical at any -parallel (adaptive policies carry per-run
# state — decaying histograms, a bandit PRNG — so this also proves no
# state leaks across the worker pool), the capability fuzz must hold,
# and at least one adaptive policy must beat the fixed threshold on the
# skewed Zipf probe.
tournament:
	$(GO) run ./cmd/tables -small -nproc 3 -exp tournament -csv -parallel 1 > /tmp/tournament_p1.csv
	$(GO) run ./cmd/tables -small -nproc 3 -exp tournament -csv -parallel 8 > /tmp/tournament_p8.csv
	cmp /tmp/tournament_p1.csv /tmp/tournament_p8.csv
	$(GO) test -race -count=1 -run 'TestTournament|TestAdaptiveBeatsThresholdOnZipf' ./internal/harness/
	$(GO) test -race -count=1 -run 'TestProtocolFuzzCapabilities|TestHeatDecay' ./internal/numa/

# avail is the degraded-mode gate: the availability sweep (every Table 3
# app plus Zipf through single-loss, rolling-loss and link-brownout
# schedules) must be byte-identical at any -parallel, and the
# failure-schedule fuzz (-short subset), the evacuation property tests
# and the rerouting unit tests must hold under -race.
avail:
	$(GO) run ./cmd/tables -small -nproc 4 -exp availability -csv -parallel 1 > /tmp/avail_p1.csv
	$(GO) run ./cmd/tables -small -nproc 4 -exp availability -csv -parallel 8 > /tmp/avail_p8.csv
	cmp /tmp/avail_p1.csv /tmp/avail_p8.csv
	$(GO) test -race -count=1 -short -run 'TestProtocolFuzzFailure|TestEvacuation|TestRevivedNodeStartsCold' ./internal/numa/
	$(GO) test -race -count=1 -run 'TestMeshDetour|TestFullyConnectedRelay|TestNodeDownSeversIncidentLinks|TestDegradedChargeDeterminism|TestInterleaveSkipsOfflineNodes' ./internal/topology/
